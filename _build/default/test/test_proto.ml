open Tmx_lang
open Tmx_exec

let unfold ?(fuel = 6) p = Proto.unfold ~fuel p

let test_straightline () =
  let p = Ast.(program ~locs:[ "x" ] [ [ store (loc "x") (int 1) ] ]) in
  let _, paths = unfold p in
  match paths with
  | [ [ path ] ] ->
      Alcotest.(check int) "one write" 1 (List.length path.Proto.protos);
      Alcotest.(check bool) "not truncated" false path.truncated
  | _ -> Alcotest.fail "expected a single path"

let test_load_branches () =
  (* a load branches over the value domain: {0} plus values written *)
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ load "r" (loc "x") ]; [ store (loc "x") (int 7) ] ])
  in
  let _, paths = unfold p in
  Alcotest.(check int) "two assumed values" 2 (List.length (List.nth paths 0))

let test_domain_fixpoint () =
  (* the increment chain makes F's domain {0,1,2} *)
  let p =
    Ast.(
      program ~locs:[ "F" ]
        [
          [ atomic [ load "f" (loc "F"); store (loc "F") Infix.(reg "f" + int 1) ] ];
          [ atomic [ load "f" (loc "F"); store (loc "F") Infix.(reg "f" + int 1) ] ];
        ])
  in
  let d, _ = unfold p in
  (* the fixpoint overapproximates under its iteration cap; it must cover
     the reachable values {0,1,2} and stay finite.  Infeasible extras die
     at the reads-from stage: the enumerator yields exactly F=2. *)
  let values = Proto.Domain.values d "F" in
  List.iter
    (fun v -> Alcotest.(check bool) (Fmt.str "domain has %d" v) true (List.mem v values))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "domain finite" true (List.length values <= 12);
  let r = Enumerate.run Tmx_core.Model.programmer p in
  let finals =
    List.sort_uniq compare
      (List.map (fun o -> Outcome.mem o "F") (Enumerate.outcomes r))
  in
  Alcotest.(check (list int)) "final F exactly 2" [ 2 ] finals

let test_abort_skips_block_tail () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ abort; store (loc "x") (int 1) ]; store (loc "x") (int 2) ] ])
  in
  let _, paths = unfold p in
  match paths with
  | [ [ path ] ] ->
      let shown = Fmt.str "%a" Fmt.(list ~sep:(any " ") Proto.pp_proto) path.protos in
      Alcotest.(check string) "abort skips the tail" "B A Wx2" shown
  | _ -> Alcotest.fail "expected a single path"

let test_branch_resolution () =
  let p =
    Ast.(
      program ~locs:[ "x"; "y" ]
        [
          [
            load "r" (loc "x");
            if_ (reg "r") [ store (loc "y") (int 1) ] [ store (loc "y") (int 2) ];
          ];
          [ store (loc "x") (int 1) ];
        ])
  in
  let _, paths = unfold p in
  let t0 = List.nth paths 0 in
  Alcotest.(check int) "two paths" 2 (List.length t0);
  let writes =
    List.map
      (fun (p : Proto.path) ->
        List.filter_map
          (function Proto.PWrite (_, v) -> Some v | _ -> None)
          p.protos)
      t0
  in
  Alcotest.(check bool) "branches write different values" true
    (List.mem [ 1 ] writes && List.mem [ 2 ] writes)

let test_fuel_truncation () =
  let p =
    Ast.(program ~locs:[ "x" ] [ [ while_ (int 1) [ store (loc "x") (int 1) ] ] ])
  in
  let _, paths = Proto.unfold ~fuel:3 p in
  Alcotest.(check bool) "all truncated" true
    (List.for_all (fun (p : Proto.path) -> p.truncated) (List.nth paths 0))

let test_cell_resolution () =
  let p =
    Ast.(
      program ~locs:[ "x"; "z[0]"; "z[7]" ]
        [
          [ load "r" (loc "x"); store (cell "z" (reg "r")) (int 1) ];
          [ store (loc "x") (int 7) ];
        ])
  in
  let _, paths = unfold p in
  let cells =
    List.concat_map
      (fun (p : Proto.path) ->
        List.filter_map
          (function Proto.PWrite (x, _) -> Some x | _ -> None)
          p.protos)
      (List.nth paths 0)
  in
  Alcotest.(check bool) "resolves z[0] and z[7]" true
    (List.mem "z[0]" cells && List.mem "z[7]" cells)

let suite =
  [
    Alcotest.test_case "straightline unfolding" `Quick test_straightline;
    Alcotest.test_case "loads branch over domains" `Quick test_load_branches;
    Alcotest.test_case "domain fixpoint" `Quick test_domain_fixpoint;
    Alcotest.test_case "abort skips block tail" `Quick test_abort_skips_block_tail;
    Alcotest.test_case "branch resolution" `Quick test_branch_resolution;
    Alcotest.test_case "fuel truncation" `Quick test_fuel_truncation;
    Alcotest.test_case "array cell resolution" `Quick test_cell_resolution;
  ]
