lib/exec/proto.mli: Fmt Tmx_lang
