(* Exhaustive enumeration of the consistent executions of a litmus
   program, herd-style.

   Rather than enumerating raw interleavings (hopeless beyond a handful of
   events), we enumerate execution graphs — per-thread control paths ×
   reads-from choices × per-location coherence orders × fence/transaction
   orderings — and then build one well-formed linearization per graph.
   This is justified by the paper's observation (§2) that WF8–WF11 are
   redundant with respect to the consistency axioms when traces are viewed
   as execution graphs: a graph is the semantics of some well-formed trace
   iff the WF-derived ordering constraints are acyclic.  The per-combo
   machinery (event lists, choice points, the constraint linearizer)
   lives in [Combo].

   Three strategies cover the same candidate space (docs/ENUMERATION.md
   is the chapter-length account):

   · [No_reduction] — the reference: iterate the full selection product
     and evaluate every candidate by building its trace, lifting the
     relations and checking the axioms.

   · [Dpor] — walk the product as a prefix tree carrying an incremental
     execution-graph state ([Reduce]); prune a subtree the moment its
     shared prefix is doomed (constraint cycle, causality cycle, a
     coherence/observation reversal), bulk-counting the skipped
     candidates so the accounting matches the reference exactly, and
     judge surviving leaves on the accumulated relations with no trace
     or lifting in sight.  Executions, their order, [graphs] and
     [capped] are bit-identical to the reference.

   · [Dpor_sym] — additionally quotient the thread-path combinations by
     program automorphisms ([Symmetry]): only orbit representatives are
     searched, and their consistent selections are transported onto each
     image combo by renaming.  The execution multiset, every verdict and
     the candidate accounting are preserved; within an orbit the
     executions of an image combo appear in the representative's
     enumeration order (a deterministic order that can differ from the
     reference's within-combo order). *)

open Tmx_core

type reduction = No_reduction | Dpor | Dpor_sym

let reduction_name = function
  | No_reduction -> "none"
  | Dpor -> "dpor"
  | Dpor_sym -> "dpor+sym"

let reduction_of_string = function
  | "none" -> Some No_reduction
  | "dpor" -> Some Dpor
  | "dpor+sym" -> Some Dpor_sym
  | _ -> None

type config = {
  fuel : int;
  domain_iters : int;
  max_graphs : int;
  jobs : int;
  reduction : reduction;
}

let default_config =
  {
    fuel = 6;
    domain_iters = 4;
    max_graphs = 500_000;
    jobs = 1;
    reduction = Dpor_sym;
  }

(* jobs excluded: results are bit-identical for every jobs value, so
   runs with different parallelism share a cache entry.  The reduction
   mode is included: [Dpor_sym] may order executions within an orbit
   differently from the reference. *)
let config_key c =
  Printf.sprintf "fuel=%d;domain_iters=%d;max_graphs=%d;reduction=%s" c.fuel
    c.domain_iters c.max_graphs (reduction_name c.reduction)

type execution = { trace : Trace.t; outcome : Outcome.t }

type result = {
  executions : execution list;
  truncated : bool; (* some thread path hit the loop-unrolling bound *)
  capped : bool; (* the graph-count cap was hit *)
  graphs : int; (* candidate graphs accounted for *)
  explored : int; (* candidate graphs whose leaf check actually ran *)
}

(* Below this many estimated candidates, a parallel run falls back to
   the sequential path: domain spawn and merge cost more than the
   enumeration itself.  Under reduction the estimate is taken over the
   reduced space — live orbit representatives — so a run whose candidate
   space collapses under symmetry never pays for a pool.  Verdicts are
   unaffected either way. *)
let parallel_threshold = 64

(* -- the unreduced reference ---------------------------------------------- *)

(* Enumerate the candidate graphs of [combo], optionally pinning the
   first read's reads-from choice to candidate index [pin] (the parallel
   task split: pinning choice k and iterating k in order visits the
   candidates in exactly the sequential order).  [claim] is called once
   per candidate graph, in enumeration order, and returns [Some ordinal]
   to process it or [None] to count-and-skip it — graph-cap policy lives
   in the caller; [emit] receives each consistent execution with its
   candidate ordinal. *)
let enumerate_combo ~model ~locs ?pin ~claim ~emit (combo : Combo.t) =
  let read_choices = List.map (Combo.rf_candidates combo) combo.reads in
  let read_choices =
    match (pin, read_choices) with
    | None, cs -> cs
    | Some k, c :: rest -> [ List.nth c k ] :: rest
    | Some _, [] -> assert false
  in
  if List.exists (fun c -> c = []) read_choices then ()
  else begin
    let locs_written = Combo.locs_written combo in
    let ww_choices =
      List.map (fun x -> Combo.permutations (Combo.writes_of combo x)) locs_written
    in
    let fence_pairs = Combo.fence_pairs combo in
    let fence_keys = List.map fst fence_pairs in
    let fence_opts = List.map snd fence_pairs in
    Combo.product read_choices (fun rf_sel ->
        Combo.product ww_choices (fun ww_sel ->
            Combo.product fence_opts (fun fence_sel ->
                match claim () with
                | None -> ()
                | Some ordinal -> (
                    let selection =
                      {
                        Combo.rf_sel = List.combine combo.reads rf_sel;
                        ww_sel = List.combine locs_written ww_sel;
                        fence_sel = List.combine fence_keys fence_sel;
                      }
                    in
                    match Combo.linearize ~locs combo selection with
                    | None -> ()
                    | Some trace ->
                        let ctx = Lift.make trace in
                        let hb = Hb.compute model ctx in
                        if Consistency.consistent_axioms model ctx hb then
                          emit ordinal
                            { trace; outcome = Combo.outcome ~locs combo trace }))))
  end

let collect_combos thread_paths =
  let acc = ref [] in
  Combo.product thread_paths (fun sel -> acc := sel :: !acc);
  List.rev_map Combo.prepare !acc

(* Sequential reference path: one global candidate counter, cap applied
   as candidates are claimed. *)
let run_sequential ~config ~model ~locs ~truncated combos =
  let executions = ref [] and graphs = ref 0 and capped = ref false in
  let claim () =
    if !graphs >= config.max_graphs then begin
      capped := true;
      None
    end
    else begin
      incr graphs;
      Some (!graphs - 1)
    end
  in
  let emit _ordinal e = executions := e :: !executions in
  List.iter (fun combo -> enumerate_combo ~model ~locs ~claim ~emit combo) combos;
  {
    executions = List.rev !executions;
    truncated;
    capped = !capped;
    graphs = !graphs;
    explored = !graphs;
  }

(* Parallel path: fan tasks — (combo, first-read choice) pairs in
   sequential enumeration order — over a domain pool, then merge the
   per-task results in task order.

   Determinism argument.  Each task enumerates its own candidate
   sub-tree in the sequential order and records results against local
   candidate ordinals; pinning the first read's choice to k and ranging
   k over the candidates in order partitions the sequential candidate
   sequence into contiguous runs, so the global ordinal of a task's
   candidate is the task's prefix sum plus its local ordinal.  The merge
   walks tasks in index order, reconstructing exactly the sequential
   execution list, graph count and cap verdict no matter how the
   domains interleaved.  A task processes a candidate only when its
   local ordinal is below the cap (a deterministic over-approximation of
   "global ordinal below the cap": prefix sums are nonnegative); the
   merge then drops the few over-approximated ones. *)
let run_parallel ~config ~model ~locs ~truncated combos =
  let tasks =
    List.concat_map
      (fun (combo : Combo.t) ->
        match Combo.first_read_width combo with
        | None -> [ (combo, None) ]
        | Some w -> List.init w (fun k -> (combo, Some k)))
      combos
    |> Array.of_list
  in
  let results =
    Pool.run_tasks ~jobs:config.jobs ~tasks:(Array.length tasks) (fun ti ->
        let combo, pin = tasks.(ti) in
        (* re-prepare so every mutable index table is domain-local *)
        let combo = Combo.prepare combo.Combo.paths in
        let count = ref 0 and execs = ref [] in
        let claim () =
          let ordinal = !count in
          incr count;
          if ordinal < config.max_graphs then Some ordinal else None
        in
        let emit ordinal e = execs := (ordinal, e) :: !execs in
        enumerate_combo ~model ~locs ?pin ~claim ~emit combo;
        (!count, List.rev !execs))
  in
  let total = Array.fold_left (fun acc (c, _) -> acc + c) 0 results in
  let executions = ref [] and prefix = ref 0 in
  Array.iter
    (fun (count, execs) ->
      List.iter
        (fun (ordinal, e) ->
          if !prefix + ordinal < config.max_graphs then
            executions := e :: !executions)
        execs;
      prefix := !prefix + count)
    results;
  {
    executions = List.rev !executions;
    truncated;
    capped = total > config.max_graphs;
    graphs = min total config.max_graphs;
    explored = min total config.max_graphs;
  }

(* More domains than cores only adds task-split and scheduling overhead
   (the pool won't spawn them anyway); results are jobs-independent, so
   clamping is invisible except in wall-clock. *)
let effective_jobs jobs = min jobs (Pool.available_cores ())

let run_unreduced ~config ~model ~locs ~truncated thread_paths =
  let combos = collect_combos thread_paths in
  let small () =
    (* saturating sum; stop adding once clearly past the threshold *)
    let rec go acc = function
      | [] -> acc < parallel_threshold
      | _ when acc >= parallel_threshold -> false
      | c :: rest -> go (acc + Combo.estimated_graphs c) rest
    in
    go 0 combos
  in
  if effective_jobs config.jobs <= 1 || small () then
    run_sequential ~config ~model ~locs ~truncated combos
  else run_parallel ~config ~model ~locs ~truncated combos

(* -- the reduced driver --------------------------------------------------- *)

(* One driver covers sequential and parallel reduced runs: the candidate
   space is cut to tasks — (live orbit representative, first-read pin)
   in enumeration order — run through the pool (with [jobs = 1] the pool
   spawns nothing and runs them in order in the calling domain), and a
   single merge pass walks every combo in enumeration order,
   reconstructing counts, cap verdicts and executions; image combos
   replay their representative's consistent selections through
   [Symmetry.map_selection].  Results are therefore identical whatever
   [jobs] was, by construction. *)
let run_reduced ~config ~model ~locs ~truncated reduction thread_paths =
  let tp = Array.of_list (List.map Array.of_list thread_paths) in
  let nthreads = Array.length tp in
  let radices = Array.map Array.length tp in
  let total_combos =
    if Array.exists (fun r -> r = 0) radices then 0
    else Array.fold_left ( * ) 1 radices
  in
  let weights = Array.make (max nthreads 1) 1 in
  for i = nthreads - 2 downto 0 do
    weights.(i) <- weights.(i + 1) * radices.(i + 1)
  done;
  let decode idx =
    Array.init nthreads (fun i -> idx / weights.(i) mod radices.(i))
  in
  let paths_of idx =
    Array.to_list (Array.mapi (fun i s -> tp.(i).(s)) (decode idx))
  in
  let sym =
    match reduction with
    | Dpor_sym -> Symmetry.orbits ~radices (Symmetry.find thread_paths)
    | _ -> None
  in
  let rep_of idx = match sym with None -> idx | Some s -> Symmetry.rep s idx in
  let feas = Reduce.Feasible.make tp in
  let live idx = Reduce.Feasible.check feas (decode idx) in
  let prepared : (int, Combo.t) Hashtbl.t = Hashtbl.create 64 in
  let prepare idx =
    match Hashtbl.find_opt prepared idx with
    | Some c -> c
    | None ->
        let c = Combo.prepare (paths_of idx) in
        Hashtbl.add prepared idx c;
        c
  in
  let live_reps = ref [] in
  for idx = total_combos - 1 downto 0 do
    if rep_of idx = idx && live idx then live_reps := idx :: !live_reps
  done;
  let live_reps = !live_reps in
  (* the parallel fallback decides on the reduced candidate estimate:
     live orbit representatives only *)
  let jobs =
    if effective_jobs config.jobs <= 1 then 1
    else begin
      let rec go acc = function
        | [] -> acc
        | _ when acc >= parallel_threshold -> acc
        | r :: rest -> go (acc + Combo.estimated_graphs (prepare r)) rest
      in
      if go 0 live_reps < parallel_threshold then 1 else config.jobs
    end
  in
  let tasks =
    List.concat_map
      (fun r ->
        if jobs <= 1 then [ (r, None) ]
        else
          match Combo.first_read_width (prepare r) with
          | None -> [ (r, None) ]
          | Some w -> List.init w (fun k -> (r, Some k)))
      live_reps
    |> Array.of_list
  in
  (* with jobs = 1 no domain is spawned, so prepared combos are safe to
     share; parallel workers re-prepare domain-locally *)
  let share = jobs <= 1 in
  let results =
    Pool.run_tasks ~jobs ~tasks:(Array.length tasks) (fun ti ->
        let r, pin = tasks.(ti) in
        let combo = if share then prepare r else Combo.prepare (paths_of r) in
        let plan = Reduce.make_plan ~model ~locs combo in
        let count = ref 0 and execs = ref [] in
        let claim k =
          let ordinal = !count in
          count := !count + k;
          if ordinal < config.max_graphs then Some ordinal else None
        in
        let emit ordinal sel trace =
          execs :=
            (ordinal, sel, { trace; outcome = Combo.outcome ~locs combo trace })
            :: !execs
        in
        let explored = Reduce.enumerate ?pin ~claim ~emit plan in
        (!count, explored, List.rev !execs))
  in
  (* fold each representative's tasks back together, offsetting local
     ordinals by the task prefix within the combo *)
  let rep_data = Hashtbl.create 64 in
  let ti = ref 0 in
  List.iter
    (fun r ->
      let count = ref 0 and explored = ref 0 and execs = ref [] in
      while !ti < Array.length tasks && fst tasks.(!ti) = r do
        let c, x, es = results.(!ti) in
        List.iter (fun (o, s, e) -> execs := (!count + o, s, e) :: !execs) es;
        count := !count + c;
        explored := !explored + x;
        incr ti
      done;
      Hashtbl.add rep_data r (!count, !explored, List.rev !execs))
    live_reps;
  (* global merge in combo enumeration order *)
  let executions = ref [] and prefix = ref 0 in
  for idx = 0 to total_combos - 1 do
    let r = rep_of idx in
    match Hashtbl.find_opt rep_data r with
    | None -> () (* infeasible orbit: zero candidates, like the skip above *)
    | Some (count, _, execs) ->
        if idx = r then
          List.iter
            (fun (o, _sel, e) ->
              if !prefix + o < config.max_graphs then
                executions := e :: !executions)
            execs
        else begin
          let kept =
            List.filter (fun (o, _, _) -> !prefix + o < config.max_graphs) execs
          in
          if kept <> [] then begin
            let pi = Symmetry.perm (Option.get sym) idx in
            let from = prepare r and to_ = prepare idx in
            List.iter
              (fun (_o, sel, _e) ->
                let sel' = Symmetry.map_selection ~from ~to_ pi sel in
                match Combo.linearize ~locs to_ sel' with
                | Some trace ->
                    executions :=
                      { trace; outcome = Combo.outcome ~locs to_ trace }
                      :: !executions
                | None ->
                    (* the representative's candidate linearized, and
                       the renaming preserves the constraint graph *)
                    assert false)
              kept
          end
        end;
        prefix := !prefix + count
  done;
  let explored = Hashtbl.fold (fun _ (_, x, _) acc -> acc + x) rep_data 0 in
  {
    executions = List.rev !executions;
    truncated;
    capped = !prefix > config.max_graphs;
    graphs = min !prefix config.max_graphs;
    explored;
  }

(* The shared front half of [run], also the entry point of the
   architecture backends (Tmx_arch), which reuse the candidate space —
   combos × reads-from × coherence × fence sides — but judge the graphs
   under per-architecture axioms instead of linearizing. *)
let unfold_combos config (program : Tmx_lang.Ast.program) =
  (match Tmx_lang.Ast.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Enumerate.unfold_combos: " ^ msg));
  let domain, thread_paths =
    Proto.unfold ~iters:config.domain_iters ~fuel:config.fuel program
  in
  let locs = Proto.Domain.locs domain in
  let truncated =
    List.exists (List.exists (fun (p : Proto.path) -> p.truncated)) thread_paths
  in
  let thread_paths =
    List.map (List.filter (fun (p : Proto.path) -> not p.truncated)) thread_paths
  in
  (locs, thread_paths, truncated)

let run ?(config = default_config) (model : Model.t) (program : Tmx_lang.Ast.program) =
  let locs, thread_paths, truncated = unfold_combos config program in
  match config.reduction with
  | No_reduction -> run_unreduced ~config ~model ~locs ~truncated thread_paths
  | (Dpor | Dpor_sym) as reduction ->
      run_reduced ~config ~model ~locs ~truncated reduction thread_paths

let outcomes result = Outcome.dedup (List.map (fun e -> e.outcome) result.executions)

let allowed result cond = List.exists (fun e -> cond e.outcome) result.executions
let forbidden result cond = not (allowed result cond)
