(** Structure-aware minimization of failing fuzz programs.

    A shrink step is one of four syntactic reductions — drop a thread,
    drop one statement (at any depth), detransactionalize (splice an
    atomic body into its thread, dropping aborts), or narrow the
    location set (rename one declared location to another) — each of
    which strictly decreases the {!measure} and preserves
    well-formedness ([Ast.validate]).  {!minimize} greedily applies the
    first candidate that still fails the oracle, so minimization is
    deterministic (there is no randomness anywhere in this module) and
    terminates: the measure is lexicographic and well-founded. *)

open Tmx_lang

val size : Ast.program -> int
(** Recursive statement count (atomic/if/while bodies included). *)

val measure : Ast.program -> int * int * int
(** [(size, threads, distinct locations)] — every candidate produced by
    {!candidates} is lexicographically strictly smaller. *)

val candidates : Ast.program -> Ast.program list
(** All one-step reductions that pass [Ast.validate], in a fixed
    deterministic order (threads dropped first, then statements
    outside-in, then detransactionalizations, then location
    narrowings). *)

val minimize :
  fails:(Ast.program -> bool) -> Ast.program -> Ast.program * int
(** [minimize ~fails p] repeatedly replaces the program by its first
    still-failing candidate.  Returns the fixpoint and the number of
    accepted shrink steps.  [p] itself is assumed failing; the result
    still satisfies [fails] (trivially so when [p] does). *)
