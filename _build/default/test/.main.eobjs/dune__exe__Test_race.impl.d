test/test_race.ml: Alcotest Hb Lift List Model Race Tb Tmx_core
