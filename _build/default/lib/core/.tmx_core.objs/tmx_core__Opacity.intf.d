lib/core/opacity.mli: Model Trace
