(** Happens-before (§2 of the paper; §5 for the quiescence-fence rules).

    [compute model ctx] is the least relation containing
    [init ∪ po ∪ cwr ∪ cww] (plus the HBCQ/HBQB fence edges when
    [model.quiescence]), closed under transitivity and whichever of the
    HBww/HBwr/HBrw rules and their primed variants [model] enables. *)

val compute : Model.t -> Lift.ctx -> Rel.t

val quiescence_edges : Lift.ctx -> Rel.t
(** The HBCQ and HBQB edges of the implementation model, exposed for
    testing. *)
