test/main.mli:
