(** Temporal locality (§4): stability points and the "bounded in time"
    half of the SC-LTRF guarantee.

    A position is temporally L-stable when every L-race of the trace lies
    strictly in its past.  The temporal content of SC-LTRF: past a stable
    point of a consistent execution, no (nonaborted) L-weak action
    occurs — the locations in L behave sequentially from then on, which
    is the paper's guarded-IRIW example made checkable. *)

open Tmx_core

val races_crossing :
  ?l:string list -> Trace.t -> Rel.t -> int -> (int * int) list

val is_stable : ?l:string list -> Trace.t -> Rel.t -> int -> bool

val stable_points : ?l:string list -> Trace.t -> Rel.t -> int list
(** All stable positions, in increasing order (the trace length itself is
    always included). *)

val conflicting_weak : ?l:string list -> Trace.t -> int -> bool
(** Nonaborted, L-weak, and obscured by a write it could actually race
    with (at least one of the pair is plain).  Transactional weakness
    against transactional writes is excluded: such pairs never race, and
    the SC-LTRF proof resolves them by permutation. *)

val weak_at_or_after : ?l:string list -> Trace.t -> int -> int list
(** Positions of conflicting-weak actions at or after a position. *)

type violation = { trace : Trace.t; stable_point : int; weak_position : int }

val check_temporal :
  ?config:Enumerate.config ->
  ?l:string list ->
  Model.t ->
  Tmx_lang.Ast.program ->
  violation list

val temporal_holds :
  ?config:Enumerate.config ->
  ?l:string list ->
  Model.t ->
  Tmx_lang.Ast.program ->
  bool
