(* Run every catalog litmus test and assert all its expectations hold.
   This is the machine-checked version of the paper's figures. *)

let case (litmus : Tmx_litmus.Litmus.t) =
  Alcotest.test_case
    (Fmt.str "%s (%s)" litmus.name litmus.section)
    `Quick
    (fun () ->
      let report = Tmx_litmus.Litmus.run litmus in
      if not (Tmx_litmus.Litmus.passed report) then
        Alcotest.failf "%a" Tmx_litmus.Litmus.pp_report report;
      Alcotest.(check bool) "no truncation" false report.truncated;
      Alcotest.(check bool) "no capping" false report.capped)

let suite = List.map case Tmx_litmus.Catalog.all
