lib/core/consistency.ml: Fmt Fun Hb Lift List Model Rel Wellformed
