(* Reduced enumeration of one combo's candidate graphs.

   The unreduced enumerator iterates the full selection product —
   reads-from sources × per-location coherence permutations × fence
   sides — and evaluates every leaf by building a trace, lifting its
   relations and checking the axioms.  Here the same product is walked
   as a prefix tree whose nodes carry an incrementally maintained
   execution-graph state:

     h    the definite part of happens-before (init ∪ po ∪ cwr ∪ cww
          ∪ quiescence edges pinned by the WF12 fence choices), kept
          transitively closed;
     k    closure(h ∪ lwr ∪ xrw) — the Causality axiom's relation;
     c    the WF-derived linearization constraints (po, WF8–WF12);
     lww/lwr/lrw/xrw/crw — the lifted relations, accumulated edge by
          edge as choices pin them down.

   Every relation grows monotonically along a branch: each choice adds
   edges and never removes any, and the rule-derived happens-before
   extensions at a leaf only add more.  A prefix is therefore *doomed* —
   no leaf below it can be consistent or linearizable — as soon as

     · c acquires a cycle (no linearization exists: WF violation),
     · k acquires a cycle (Causality fails at every leaf), or
     · a new lww/lrw edge (a, b) arrives with b already h-before a
       (Coherence/Observation fail at every leaf),

   and the whole subtree is skipped after bulk-counting its candidates,
   so the candidate-graph accounting matches the unreduced enumerator
   exactly.  At a surviving leaf the full axiom check runs over the
   accumulated relations (extended by the model's happens-before rules
   via [Hb.compute_from]) — no trace, no [Lift.make]; only consistent
   candidates are then linearized.

   Indexing: candidates are judged in a fixed universe that prepends the
   initializing transaction (Begin, one write per location in [locs]
   order, Commit) to the combo's events, mirroring [Trace.make]'s
   layout.  Trace positions of an eventual linearization are a
   permutation of this universe, and every axiom is invariant under
   permutation, so verdicts transfer. *)

open Tmx_core

(* -- cheap per-selection feasibility -------------------------------------- *)

(* A combo enumerates zero candidates whenever some read's value has no
   selected writer (its reads-from candidate list is empty): the
   unreduced enumerator prepares the combo and then skips it.  This
   check spots most such combos from per-path summaries alone, so dead
   path selections are never prepared at all.  Only the "no writer
   anywhere" case is decided here — reads of 0 are always fed by the
   initializing write, and the finer rf filters (aborted-foreign,
   same-thread-later sources) are left to preparation. *)
module Feasible = struct
  type t = {
    writes : (string * int, unit) Hashtbl.t array array;
    reads_nz : (string * int) list array array;
  }

  let make (tp : Proto.path array array) =
    let writes =
      Array.map
        (Array.map (fun (p : Proto.path) ->
             let h = Hashtbl.create 8 in
             List.iter
               (function
                 | Proto.PWrite (x, v) -> Hashtbl.replace h (x, v) ()
                 | _ -> ())
               p.protos;
             h))
        tp
    in
    let reads_nz =
      Array.map
        (Array.map (fun (p : Proto.path) ->
             List.sort_uniq compare
               (List.filter_map
                  (function
                    | Proto.PRead (x, v) when v <> 0 -> Some (x, v)
                    | _ -> None)
                  p.protos)))
        tp
    in
    { writes; reads_nz }

  let check t (sel : int array) =
    let nt = Array.length sel in
    let ok = ref true in
    Array.iteri
      (fun i si ->
        if !ok then
          List.iter
            (fun key ->
              if !ok then begin
                let found = ref false in
                for j = 0 to nt - 1 do
                  if (not !found) && Hashtbl.mem t.writes.(j).(sel.(j)) key
                  then found := true
                done;
                if not !found then ok := false
              end)
            t.reads_nz.(i).(si))
      sel;
    !ok
end

type level =
  | Lrf of int * int array (* read, candidate sources (-1 = init) *)
  | Lco of string * int list array (* location, coherence permutations *)
  | Lfence of (int * int) * Combo.fence_choice array

type plan = {
  combo : Combo.t;
  locs : string list;
  model : Model.t;
  n : int; (* combo events *)
  base : int; (* universe offset of combo events = #locs + 2 *)
  nu : int; (* universe size *)
  init_w : (string, int) Hashtbl.t; (* location -> universe init write *)
  cls : int array; (* universe -> transaction-class representative *)
  members : int list array; (* universe -> members of its class *)
  tx : bool array; (* universe -> transactional *)
  ctxv : bool array; (* universe -> committed-or-live transactional *)
  resolution : (int, int * bool) Hashtbl.t;
      (* begin -> (resolution event, is a commit) *)
  levels : level array;
  widths : int array;
  suffix : int array; (* suffix.(i) = Π_{j≥i} widths.(j), saturating *)
}

let sat_mul a b =
  let cap = max_int / 4 in
  if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b

let make_plan ~model ~locs (combo : Combo.t) =
  let ev = combo.Combo.ev in
  let n = Array.length ev in
  let nl = List.length locs in
  let base = nl + 2 in
  let nu = base + n in
  let init_w = Hashtbl.create 8 in
  List.iteri (fun j x -> Hashtbl.add init_w x (1 + j)) locs;
  (* classes: the init events form one committed transaction (class 0);
     combo events in a transaction share their Begin's class; plain
     events are singletons *)
  let cls =
    Array.init nu (fun u ->
        if u < base then 0
        else
          let e = ev.(u - base) in
          if e.Combo.txn >= 0 then base + e.txn else u)
  in
  let by_rep = Hashtbl.create 16 in
  for u = nu - 1 downto 0 do
    Hashtbl.replace by_rep cls.(u)
      (u :: Option.value (Hashtbl.find_opt by_rep cls.(u)) ~default:[])
  done;
  let members = Array.init nu (fun u -> Hashtbl.find by_rep cls.(u)) in
  let tx = Array.init nu (fun u -> u < base || ev.(u - base).Combo.txn >= 0) in
  let ctxv =
    Array.init nu (fun u ->
        u < base
        || (ev.(u - base).Combo.txn >= 0 && not ev.(u - base).Combo.aborted))
  in
  let resolution = Hashtbl.create 8 in
  Array.iteri
    (fun b e ->
      if e.Combo.proto = Proto.PBegin then
        match Combo.resolution_of combo b with
        | Some r -> Hashtbl.add resolution b (r, ev.(r).Combo.proto = Proto.PCommit)
        | None -> ())
    ev;
  let locs_written = Combo.locs_written combo in
  let levels =
    Array.of_list
      (List.map
         (fun r -> Lrf (r, Array.of_list (Combo.rf_candidates combo r)))
         combo.Combo.reads
      @ List.map
          (fun x ->
            Lco (x, Array.of_list (Combo.permutations (Combo.writes_of combo x))))
          locs_written
      @ List.map
          (fun (key, opts) -> Lfence (key, Array.of_list opts))
          (Combo.fence_pairs combo))
  in
  let widths =
    Array.map
      (function
        | Lrf (_, a) -> Array.length a
        | Lco (_, a) -> Array.length a
        | Lfence (_, a) -> Array.length a)
      levels
  in
  let nlv = Array.length levels in
  let suffix = Array.make (nlv + 1) 1 in
  for i = nlv - 1 downto 0 do
    suffix.(i) <- sat_mul widths.(i) suffix.(i + 1)
  done;
  {
    combo;
    locs;
    model;
    n;
    base;
    nu;
    init_w;
    cls;
    members;
    tx;
    ctxv;
    resolution;
    levels;
    widths;
    suffix;
  }

(* -- the incremental state ------------------------------------------------ *)

type rstate = {
  h : Rel.t; (* definite happens-before, closed *)
  k : Rel.t; (* closure(h ∪ lwr ∪ xrw): Causality *)
  c : Rel.t; (* linearization constraints, closed *)
  lww : Rel.t;
  lwr : Rel.t;
  lrw : Rel.t;
  xrw : Rel.t;
  crw : Rel.t;
  rf : int array; (* read -> chosen source; -2 = not yet chosen *)
}

let copy_state st =
  {
    h = Rel.copy st.h;
    k = Rel.copy st.k;
    c = Rel.copy st.c;
    lww = Rel.copy st.lww;
    lwr = Rel.copy st.lwr;
    lrw = Rel.copy st.lrw;
    xrw = Rel.copy st.xrw;
    crw = Rel.copy st.crw;
    rf = Array.copy st.rf;
  }

let initial_state plan =
  let nu = plan.nu and base = plan.base in
  let ev = plan.combo.Combo.ev in
  let h = Rel.create nu in
  (* initialization: every init event before every combo event, and the
     init block internally ordered (its own program order) *)
  for u = 0 to base - 1 do
    for v = u + 1 to base - 1 do
      Rel.add h u v
    done;
    for b = base to nu - 1 do
      Rel.add h u b
    done
  done;
  (* program order within the combo, for h and for the linearization
     constraints; all same-thread pairs at once keeps h closed *)
  let c = Rel.create nu in
  for i = 0 to plan.n - 1 do
    for j = i + 1 to plan.n - 1 do
      if ev.(i).Combo.thread = ev.(j).Combo.thread then begin
        Rel.add h (base + i) (base + j);
        Rel.add c (base + i) (base + j)
      end
    done
  done;
  {
    h;
    k = Rel.copy h;
    c;
    lww = Rel.create nu;
    lwr = Rel.create nu;
    lrw = Rel.create nu;
    xrw = Rel.create nu;
    crw = Rel.create nu;
    rf = Array.make (max plan.n 1) (-2);
  }

exception Doomed

(* constraint edge: prune when it closes a cycle (no linearization) *)
let add_c st a b =
  if Rel.mem st.c b a then raise Doomed
  else ignore (Rel.add_edge_closed st.c a b)

(* causality edge (lwr/xrw): prune on a k-cycle *)
let add_k st a b =
  if Rel.mem st.k b a then raise Doomed
  else ignore (Rel.add_edge_closed st.k a b)

(* Coherence/Observation against the definite happens-before: a
   violation — some (u, v) ∈ lww ∪ lrw with h(v, u) — is monotone in the
   growing relations, so the subtree dies the moment either side of the
   reversal completes.  Checked when an l-edge is added (against the h
   so far) and re-checked when h grows (against the l-edges so far). *)
let check_reversals st =
  Rel.iter st.lww (fun u v -> if Rel.mem st.h v u then raise Doomed);
  Rel.iter st.lrw (fun u v -> if Rel.mem st.h v u then raise Doomed)

(* definite happens-before edge: h ⊆ k, so the cycle check on k covers
   both *)
let add_h st a b =
  if Rel.mem st.k b a then raise Doomed;
  if Rel.add_edge_closed st.h a b then check_reversals st;
  ignore (Rel.add_edge_closed st.k a b)

(* the l-lifted pairs of one base edge: the edge itself, or the full
   cross-class block when the classes differ *)
let lift_pairs plan a b =
  if plan.cls.(a) = plan.cls.(b) then [ (a, b) ]
  else
    List.concat_map
      (fun u -> List.map (fun v -> (u, v)) plan.members.(b))
      plan.members.(a)

(* one wr base edge: lwr everywhere, k (Causality includes lwr), and h
   for the committed-or-live pairs (cwr is in the happens-before base) *)
let add_wr plan st a b =
  List.iter
    (fun (u, v) ->
      Rel.add st.lwr u v;
      add_k st u v;
      if plan.ctxv.(u) && plan.ctxv.(v) then add_h st u v)
    (lift_pairs plan a b)

(* one ww base edge: lww (spot-check Coherence against h), and h for the
   committed-or-live pairs (cww) *)
let add_ww plan st a b =
  List.iter
    (fun (u, v) ->
      Rel.add st.lww u v;
      if Rel.mem st.h v u then raise Doomed;
      if plan.ctxv.(u) && plan.ctxv.(v) then add_h st u v)
    (lift_pairs plan a b)

(* one rw base edge: lrw (spot-check Observation), xrw into k for the
   transactional pairs, crw for the committed-or-live ones *)
let add_rw plan st a b =
  List.iter
    (fun (u, v) ->
      Rel.add st.lrw u v;
      if Rel.mem st.h v u then raise Doomed;
      if plan.tx.(u) && plan.tx.(v) then begin
        Rel.add st.xrw u v;
        add_k st u v;
        if plan.ctxv.(u) && plan.ctxv.(v) then Rel.add st.crw u v
      end)
    (lift_pairs plan a b)

let loc_of_read (combo : Combo.t) r =
  match combo.ev.(r).Combo.proto with
  | Proto.PRead (x, _) -> x
  | _ -> assert false

(* apply one level's choice to a copied state; raises Doomed when the
   whole subtree below is dead *)
let apply plan st level choice =
  let ev = plan.combo.Combo.ev in
  let base = plan.base in
  match level with
  | Lrf (r, cands) ->
      let w = cands.(choice) in
      st.rf.(r) <- w;
      let ur = base + r in
      let uw =
        if w = -1 then Hashtbl.find plan.init_w (loc_of_read plan.combo r)
        else base + w
      in
      (* WF8 linearization constraint *)
      if w >= 0 then add_c st (base + w) ur;
      add_wr plan st uw ur
  | Lco (x, perms) ->
      let parr = Array.of_list perms.(choice) in
      let m = Array.length parr in
      let uw_init = Hashtbl.find plan.init_w x in
      (* coherence: init before every write, then the chosen order *)
      for i = 0 to m - 1 do
        add_ww plan st uw_init (base + parr.(i))
      done;
      for i = 0 to m - 1 do
        for j = i + 1 to m - 1 do
          let b = parr.(i) and c = parr.(j) in
          add_ww plan st (base + b) (base + c);
          (* WF9: transactional write before any coherence-later
             committed transactional write *)
          if ev.(b).Combo.txn >= 0 && ev.(c).Combo.txn >= 0 && not ev.(c).Combo.aborted
          then add_c st (base + b) (base + c)
        done
      done;
      (* position of each write of x in the chosen order, 1-based (the
         init write sits at 0) *)
      let pos = Hashtbl.create 8 in
      Array.iteri (fun i wv -> Hashtbl.replace pos wv (i + 1)) parr;
      (* reads of x: from-read edges and the WF10/WF11 constraints, now
         that the coherence order fixes the timestamps *)
      List.iter
        (fun r ->
          if String.equal (loc_of_read plan.combo r) x then begin
            let w = st.rf.(r) in
            let src_ts = if w = -1 then 0 else Hashtbl.find pos w in
            let src_is_txn = w = -1 || ev.(w).Combo.txn >= 0 in
            for j = src_ts to m - 1 do
              let c = parr.(j) in
              if not ev.(c).Combo.aborted then add_rw plan st (base + r) (base + c);
              if ev.(r).Combo.txn >= 0 then begin
                if src_is_txn && ev.(c).Combo.txn >= 0 && not ev.(c).Combo.aborted
                then add_c st (base + r) (base + c);
                if Combo.same_txn ev r c then add_c st (base + r) (base + c)
              end
            done
          end)
        plan.combo.Combo.reads
  | Lfence ((q, b), opts) -> (
      match opts.(choice) with
      | Combo.Commit_before -> (
          match Hashtbl.find_opt plan.resolution b with
          | Some (res, is_commit) ->
              (* WF12: resolution before the fence; a committed
                 resolution pins the HBCQ quiescence edge *)
              add_c st (base + res) (base + q);
              if plan.model.Model.quiescence && is_commit then
                add_h st (base + res) (base + q)
          | None -> ())
      | Combo.Fence_before ->
          (* WF12: fence before the begin; pins the HBQB edge *)
          add_c st (base + q) (base + b);
          if plan.model.Model.quiescence then add_h st (base + q) (base + b))

(* -- leaves --------------------------------------------------------------- *)

exception Found

(* [Coherence]/[Observation] without materializing the compose:
   (hb ; r) irreflexive ⟺ no (u, v) ∈ r has hb(v, u) — r is a handful
   of lifted edges, so edge iteration beats an n² compose *)
let compose_hits r hb =
  try
    Rel.iter r (fun u v -> if Rel.mem hb v u then raise Found);
    false
  with Found -> true

(* (pre ; hb ; r) irreflexive ⟺ no (b, x) ∈ r has a with pre(x, a) and
   hb(a, b) *)
let anti_hits ~nu ~pre ~hb r =
  try
    Rel.iter r (fun b x ->
        for a = 0 to nu - 1 do
          if Rel.mem pre x a && Rel.mem hb a b then raise Found
        done);
    false
  with Found -> true

(* (hb ; mid ; r) irreflexive ⟺ no (b, x) ∈ r has a with hb(x, a) and
   mid(a, b) *)
let anti_hits' ~nu ~hb ~mid r =
  try
    Rel.iter r (fun b x ->
        for a = 0 to nu - 1 do
          if Rel.mem hb x a && Rel.mem mid a b then raise Found
        done);
    false
  with Found -> true

let leaf_consistent plan st =
  let model = plan.model in
  let nu = plan.nu in
  let has_rules =
    model.Model.hb_ww || model.hb_wr || model.hb_rw || model.hb_ww'
    || model.hb_wr' || model.hb_rw'
  in
  let hb, causality =
    if has_rules then begin
      (* leaf states are single-use: extend h in place *)
      let hb =
        Hb.compute_from model
          ~plain:(fun u -> not plan.tx.(u))
          ~crw:st.crw ~lww:st.lww ~lwr:st.lwr ~lrw:st.lrw st.h
      in
      (hb, Rel.is_acyclic (Rel.union_many [ hb; st.lwr; st.xrw ]))
    end
    else
      (* without hb rules, hb is exactly h, and the walk maintained
         k = closure(h ∪ lwr ∪ xrw) acyclic by construction — Causality
         cannot fail at a leaf *)
      (st.h, true)
  in
  causality
  && (not (compose_hits st.lww hb))
  && (not (compose_hits st.lrw hb))
  && ((not model.anti_ww) || not (anti_hits ~nu ~pre:st.crw ~hb st.lww))
  && ((not model.anti_rw) || not (anti_hits ~nu ~pre:st.crw ~hb st.lrw))
  && ((not model.anti_ww') || not (anti_hits' ~nu ~hb ~mid:st.crw st.lww))
  && ((not model.anti_rw') || not (anti_hits' ~nu ~hb ~mid:st.crw st.lrw))

let selection_of plan choices =
  let rf = ref [] and ww = ref [] and fe = ref [] in
  List.iteri
    (fun li ch ->
      match plan.levels.(li) with
      | Lrf (r, cands) -> rf := (r, cands.(ch)) :: !rf
      | Lco (x, perms) -> ww := (x, perms.(ch)) :: !ww
      | Lfence (key, opts) -> fe := (key, opts.(ch)) :: !fe)
    choices;
  {
    Combo.rf_sel = List.rev !rf;
    ww_sel = List.rev !ww;
    fence_sel = List.rev !fe;
  }

(* -- the walker ----------------------------------------------------------- *)

(* Enumerate [plan]'s candidates in product order, optionally pinning
   the first level's choice (the parallel task split).  [claim k]
   accounts for [k] candidates and returns the ordinal of the first if
   it is to be processed; pruned subtrees are bulk-claimed, so ordinals
   and totals coincide with the unreduced enumerator.  [emit] receives
   each consistent execution's ordinal, selection and trace.  Returns
   the number of candidates whose leaf check actually ran. *)
let enumerate ?pin ~claim ~emit plan =
  let nlv = Array.length plan.levels in
  let explored = ref 0 in
  if Array.exists (fun w -> w = 0) plan.widths then ()
  else begin
    let rec go li st choices =
      if li = nlv then begin
        match claim 1 with
        | None -> ()
        | Some ordinal ->
            incr explored;
            if leaf_consistent plan st then begin
              let sel = selection_of plan (List.rev choices) in
              match Combo.linearize ~locs:plan.locs plan.combo sel with
              | Some trace -> emit ordinal sel trace
              | None -> ()
            end
      end
      else begin
        let lo, hi =
          match pin with
          | Some k when li = 0 -> (k, k)
          | _ -> (0, plan.widths.(li) - 1)
        in
        for ch = lo to hi do
          (* [go] owns [st] and may destroy it, so the last choice takes
             the original and only earlier siblings pay for a copy — a
             width-1 level (very common: a single write to a location, a
             read with one source) costs no copy at all *)
          let st' = if ch = hi then st else copy_state st in
          match apply plan st' plan.levels.(li) ch with
          | () -> go (li + 1) st' (ch :: choices)
          | exception Doomed -> ignore (claim plan.suffix.(li + 1))
        done
      end
    in
    go 0 (initial_state plan) []
  end;
  !explored
