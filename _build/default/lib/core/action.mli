(** Actions and events of the trace semantics (§2 of the paper, extended
    with the §5 quiescence fence).

    An {e action} is a write, read, transaction begin, commit, abort, or
    quiescence fence.  Reads and writes carry the rational timestamp that
    encodes coherence ([ww]) and reads-from ([wr]) as in the paper.  An
    {e event} pairs an action with its thread; the unique action id of the
    paper is the event's position in the trace.

    Commit/abort actions carry no transaction name: by WF5 a resolution
    matches the latest unresolved begin of its thread, so the association
    is structural and survives the order-preserving permutations of §4. *)

type loc = string
type value = int
type thread = int

val init_thread : thread
(** The reserved thread of the initializing transaction ([-1]). *)

type t =
  | Write of { loc : loc; value : value; ts : Rat.t }
  | Read of { loc : loc; value : value; ts : Rat.t }
  | Begin
  | Commit
  | Abort
  | Qfence of loc

val is_write : t -> bool
val is_read : t -> bool
val is_memory : t -> bool
val is_begin : t -> bool
val is_resolution : t -> bool
val is_qfence : t -> bool

val loc_of : t -> loc option
val value_of : t -> value option
val ts_of : t -> Rat.t option

val touches : loc -> t -> bool
(** [touches x a] holds when [a] is a read or write on location [x].
    Fences and transaction boundaries touch nothing. *)

val pp : t Fmt.t

type event = { thread : thread; act : t }

val pp_event : event Fmt.t
