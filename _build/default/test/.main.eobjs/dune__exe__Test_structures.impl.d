test/test_structures.ml: Alcotest Array Atomic Domain Fmt List Option Stm Tarray Tmap Tmx_runtime Tqueue Tvar
