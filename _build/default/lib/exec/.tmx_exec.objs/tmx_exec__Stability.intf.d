lib/exec/stability.mli: Enumerate Model Rel Tmx_core Tmx_lang Trace
