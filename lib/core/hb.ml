(* Happens-before (§2, §5).

   hb is the least relation closed under
     HBdef    a hb c  if  a (init ∪ po ∪ cwr ∪ cww) c
     HBtrans  a hb c  if  a hb b hb c
   plus the model's optional rules:
     HBww     a hb c  if  c plain, a lww c, a (crw ; hb) c
     HBwr/HBrw  likewise with lwr / lrw
     HB'ww    a hb c  if  a plain, a lww c, a (hb ; crw) c
     HB'wr/HB'rw likewise
   and, when the model has quiescence fences (§5):
     HBCQ     <Cb> hb <Qx>  if the commit precedes the fence in the trace
              and transaction b touches x
     HBQB     <Qx> hb <B b> if the fence precedes the begin in the trace
              and transaction b touches x. *)

let quiescence_edges (ctx : Lift.ctx) =
  let t = ctx.trace in
  let n = Trace.length t in
  let r = Rel.create n in
  for c = 0 to n - 1 do
    match Trace.act t c with
    | Action.Qfence x ->
        for i = 0 to n - 1 do
          match Trace.act t i with
          | Action.Commit ->
              let b = Trace.txn_of t i in
              if b >= 0 && i < c && Trace.txn_touches t b x then Rel.add r i c
          | Action.Begin ->
              if c < i && Trace.txn_touches t i x then Rel.add r c i
          | _ -> ()
        done
    | _ -> ()
  done;
  r

(* One fixpoint round of an unprimed rule: additions are
   lXX ∩ (crw ; hb) restricted to plain targets. *)
let rule_unprimed ~plain ~crw hb lxx =
  let reach = Rel.compose crw hb in
  Rel.filter lxx (fun a c -> plain c && Rel.mem reach a c)

(* One round of a primed rule: lXX ∩ (hb ; crw) restricted to plain
   sources. *)
let rule_primed ~plain ~crw hb lxx =
  let reach = Rel.compose hb crw in
  Rel.filter lxx (fun a c -> plain a && Rel.mem reach a c)

let base_rel (model : Model.t) (ctx : Lift.ctx) =
  let base = Rel.union_many [ ctx.init_; ctx.po; ctx.cwr; ctx.cww ] in
  if model.quiescence then Rel.union base (quiescence_edges ctx) else base

(* The fixpoint keeps [hb] transitively closed as an invariant: the base
   is closed once, and every rule-derived edge extends the closure
   incrementally ([Rel.union_into_closed]) rather than re-running
   Warshall per round.  The enumerator calls this once per candidate
   execution, so the per-round closure was the hot spot.

   [compute_from] runs the rule fixpoint over bare relations, without a
   trace: the reduced enumerator evaluates candidates as execution
   graphs before any linearization exists, so it supplies the plainness
   predicate and the lifted relations directly.  [hb] must be
   transitively closed on entry and is extended in place. *)
let compute_from (model : Model.t) ~plain ~crw ~lww ~lwr ~lrw hb =
  let continue = ref true in
  while !continue do
    let changed = ref false in
    let apply rel = if Rel.union_into_closed ~into:hb rel then changed := true in
    if model.hb_ww then apply (rule_unprimed ~plain ~crw hb lww);
    if model.hb_wr then apply (rule_unprimed ~plain ~crw hb lwr);
    if model.hb_rw then apply (rule_unprimed ~plain ~crw hb lrw);
    if model.hb_ww' then apply (rule_primed ~plain ~crw hb lww);
    if model.hb_wr' then apply (rule_primed ~plain ~crw hb lwr);
    if model.hb_rw' then apply (rule_primed ~plain ~crw hb lrw);
    continue := !changed
  done;
  hb

let compute (model : Model.t) (ctx : Lift.ctx) =
  let hb = base_rel model ctx in
  Rel.transitive_closure_in_place hb;
  compute_from model
    ~plain:(Trace.is_plain ctx.trace)
    ~crw:ctx.crw ~lww:ctx.lww ~lwr:ctx.lwr ~lrw:ctx.lrw hb

(* The pre-cache implementation: re-close from scratch every round.
   Kept as a definition-shaped oracle; the test suite asserts it agrees
   with [compute] (and both with [Naive.hb]) on enumerated executions
   and random traces. *)
let compute_reference (model : Model.t) (ctx : Lift.ctx) =
  let plain = Trace.is_plain ctx.trace and crw = ctx.crw in
  let hb = base_rel model ctx in
  let continue = ref true in
  while !continue do
    Rel.transitive_closure_in_place hb;
    let changed = ref false in
    let apply rel = if Rel.union_into ~into:hb rel then changed := true in
    if model.hb_ww then apply (rule_unprimed ~plain ~crw hb ctx.lww);
    if model.hb_wr then apply (rule_unprimed ~plain ~crw hb ctx.lwr);
    if model.hb_rw then apply (rule_unprimed ~plain ~crw hb ctx.lrw);
    if model.hb_ww' then apply (rule_primed ~plain ~crw hb ctx.lww);
    if model.hb_wr' then apply (rule_primed ~plain ~crw hb ctx.lwr);
    if model.hb_rw' then apply (rule_primed ~plain ~crw hb ctx.lrw);
    continue := !changed
  done;
  Rel.transitive_closure_in_place hb;
  hb
