open Tmx_core
open Tmx_exec
open Tb

let pm = Model.programmer

let test_causal_future () =
  (* publication chain: Wx1 po Wy1(txn) cwr Ry1(txn) po Rx1 — everything
     downstream of Wx1 is in its causal future *)
  let t =
    mk ~locs:[ "x"; "y" ]
      [ w 0 "x" 1 1; b 0; w 0 "y" 1 1; c 0; b 1; r 1 "y" 1 1; c 1; r 1 "x" 1 1 ]
  in
  let future = Closure.causal_future pm t 4 in
  (* positions: init 0..3; Wx1=4; B=5 Wy1=6 C=7; B=8 Ry1=9 C=10; Rx1=11 *)
  List.iter
    (fun i ->
      Alcotest.(check bool) (Fmt.str "%d in future" i) true (List.mem i future))
    [ 6; 9; 11 ];
  Alcotest.(check bool) "Wx1 not in own future" false (List.mem 4 future)

let test_drop_causal_future () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [ w 0 "x" 1 1; b 0; w 0 "y" 1 1; c 0; b 1; r 1 "y" 1 1; c 1 ]
  in
  let t' = Closure.drop_causal_future pm t 4 in
  (* dropping the future of Wx1 removes the flag transaction and its
     reader, but keeps Wx1 and the initializing transaction *)
  Alcotest.(check bool) "kept the write" true
    (Array.exists
       (fun (e : Action.event) ->
         match e.act with Action.Write { loc = "x"; value = 1; _ } -> true | _ -> false)
       (Trace.events t'));
  Alcotest.(check bool) "dropped the reader" true (Trace.length t' < Trace.length t);
  Alcotest.(check bool) "still well-formed" true (Wellformed.is_well_formed t');
  Alcotest.(check bool) "still consistent" true (Consistency.consistent pm t')

let test_contiguizer_succeeds () =
  (* a consistent non-contiguous trace of committed transactions can be
     permuted into a contiguous one *)
  let t =
    mk ~locs:[ "x"; "y" ]
      [ b 0; w 0 "x" 1 1; w 1 "y" 7 1; w 0 "y" 1 2; c 0 ]
  in
  Alcotest.(check bool) "not contiguous initially" false (Trace.all_txns_contiguous t);
  match Closure.contiguous_permutation pm t with
  | None -> Alcotest.fail "expected a contiguity permutation"
  | Some perm ->
      let t' = Trace.permute t perm in
      Alcotest.(check bool) "order preserving" true (Trace.is_order_preserving t perm);
      Alcotest.(check bool) "contiguous" true (Trace.all_txns_contiguous t');
      Alcotest.(check bool) "well-formed" true (Wellformed.is_well_formed t');
      Alcotest.(check bool) "consistent" true (Consistency.consistent pm t')

let test_contiguizer_on_enumerated () =
  List.iter
    (fun name ->
      let p = (Option.get (Tmx_litmus.Catalog.find name)).program in
      let r = Enumerate.run pm p in
      List.iter
        (fun (e : Enumerate.execution) ->
          match Closure.contiguous_permutation pm e.trace with
          | Some perm ->
              let t' = Trace.permute e.trace perm in
              Alcotest.(check bool) "contiguous" true (Trace.all_txns_contiguous t');
              Alcotest.(check bool) "consistent" true (Consistency.consistent pm t')
          | None ->
              (* only acceptable for the aborted-transaction edge case *)
              Alcotest.(check bool)
                (Fmt.str "%s: only aborted txns can defeat contiguity" name)
                true
                (List.exists (Trace.is_aborted e.trace) (Trace.txns e.trace)))
        r.executions)
    [ "privatization"; "publication"; "iriw_z"; "ex3_4"; "aborted_pub" ]

(* The counterexample to Lemma A.5's parenthetical claim: an aborted
   transaction that writes a smaller timestamp than a committed
   transaction it also reads from must interleave with it — WF9 forces
   its write before the committed write, WF8 its read after.  The trace
   is consistent, yet no order-preserving permutation has contiguous
   transactions. *)
let test_contiguizer_aborted_counterexample () =
  let t =
    mk ~locs:[ "x" ]
      [
        b 0; w 0 "x" 1 1;
        b 1; w 1 "x" 2 2; c 1;
        r 0 "x" 2 2; a 0;
      ]
  in
  Alcotest.(check bool) "well-formed" true (Wellformed.is_well_formed t);
  Alcotest.(check bool) "consistent" true (Consistency.consistent pm t);
  Alcotest.(check bool) "not contiguous" false (Trace.all_txns_contiguous t);
  Alcotest.(check (option (of_pp Fmt.(any "perm")))) "no contiguity permutation"
    None
    (Closure.contiguous_permutation pm t)

(* the same scenario arises from an actual program *)
let test_aborted_interleaving_from_program () =
  let p =
    Tmx_lang.Ast.(
      program ~name:"a5-counterexample" ~locs:[ "x" ]
        [
          [ atomic [ store (loc "x") (int 1); load "r" (loc "x"); abort ] ];
          [ atomic [ store (loc "x") (int 2) ] ];
        ])
  in
  let r = Enumerate.run pm p in
  Alcotest.(check bool) "aborted txn reads the committed overwrite" true
    (List.exists
       (fun (e : Enumerate.execution) ->
         Tmx_litmus.Litmus.aborted_txn_with_reads [ ("x", 2) ] e.trace)
       r.executions)

let suite =
  [
    Alcotest.test_case "causal future" `Quick test_causal_future;
    Alcotest.test_case "causal closure" `Quick test_drop_causal_future;
    Alcotest.test_case "contiguizer on a hand trace" `Quick test_contiguizer_succeeds;
    Alcotest.test_case "contiguizer on enumerated executions" `Slow
      test_contiguizer_on_enumerated;
    Alcotest.test_case "Lemma A.5 aborted counterexample" `Quick
      test_contiguizer_aborted_counterexample;
    Alcotest.test_case "counterexample reachable from a program" `Quick
      test_aborted_interleaving_from_program;
  ]
