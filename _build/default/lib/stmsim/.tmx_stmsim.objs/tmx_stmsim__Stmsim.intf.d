lib/stmsim/stmsim.mli: Outcome Sc Tmx_exec Tmx_lang
