lib/core/dot.mli: Model Trace
