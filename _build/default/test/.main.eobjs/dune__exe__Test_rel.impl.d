test/test_rel.ml: Alcotest Array Fun List QCheck QCheck_alcotest Random Rel Tmx_core
