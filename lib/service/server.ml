(* The tmx serve daemon.  N worker domains share the listening sockets
   (Unix and/or TCP) through a select loop; each owns its accepted
   connection and runs the NDJSON request loop on it.  Reads and the
   select carry a short timeout so workers notice the stop flag even
   inside an idle connection; a client vanishing mid-request (read EOF,
   or EPIPE on the response write) tears down only that connection.

   Binding is split out ([listen]) from serving ([start ~listener]) so
   the CLI can bind once, print the bound addresses (the kernel picks
   the port for --port 0), and fork shard processes that inherit the
   same listening fds — the kernel then load-balances accepts across
   processes, and a respawned shard reuses the fd without re-binding.

   Overload is handled by admission, not queueing: at most
   [max_inflight] expensive requests run at once per process, and an
   arrival past that is answered immediately with a structured
   "overloaded" error (Contention.Admission — the STM Budget policy's
   bound, reused as backpressure).  Cheap verbs (ping, stats, shutdown)
   bypass admission so observability and shutdown survive overload. *)

open Tmx_core
open Tmx_exec
open Tmx_litmus

type config = {
  socket : string option;
  tcp : (string * int) option;
  cache_dir : string;
  cache_capacity : int;
  cache_shards : int;
  workers : int;
  jobs : int;
  max_inflight : int;
  enum : Enumerate.config;
  verbose : bool;
}

let default_config ~socket =
  {
    socket = Some socket;
    tcp = None;
    cache_dir = Cache.default_dir ();
    cache_capacity = 128;
    cache_shards = 1;
    workers = 2;
    jobs = 1;
    max_inflight = 0;
    enum = Enumerate.default_config;
    verbose = false;
  }

(* -- listeners -------------------------------------------------------------- *)

type listener = {
  l_unix : (Unix.file_descr * string) option;
  l_tcp : (Unix.file_descr * string * int) option;  (* fd, host, bound port *)
}

let listen_fds l =
  List.filter_map Fun.id
    [
      Option.map (fun (fd, _) -> fd) l.l_unix;
      Option.map (fun (fd, _, _) -> fd) l.l_tcp;
    ]

let addresses l =
  (match l.l_unix with Some (_, p) -> [ "unix:" ^ p ] | None -> [])
  @
  match l.l_tcp with
  | Some (_, h, p) -> [ Printf.sprintf "tcp:%s:%d" h p ]
  | None -> []

let tcp_port l = Option.map (fun (_, _, p) -> p) l.l_tcp

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception _ -> (
      match
        Unix.getaddrinfo host ""
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let close_listener l =
  Option.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) l.l_unix;
  Option.iter (fun (fd, _, _) -> try Unix.close fd with _ -> ()) l.l_tcp

let listen cfg =
  if cfg.socket = None && cfg.tcp = None then
    invalid_arg "Server.listen: need a Unix socket path or a TCP address";
  let l_unix =
    Option.map
      (fun path ->
        if Sys.file_exists path then (try Unix.unlink path with _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 64;
           (* nonblocking so workers selecting on the same fd never hang
              in accept when a sibling wins the race for the connection *)
           Unix.set_nonblock fd
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        (fd, path))
      cfg.socket
  in
  match
    Option.map
      (fun (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
           Unix.listen fd 64;
           Unix.set_nonblock fd
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, host, bound))
      cfg.tcp
  with
  | l_tcp -> { l_unix; l_tcp }
  | exception e ->
      Option.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) l_unix;
      raise e

type t = {
  cfg : config;
  listener : listener;
  owns_listener : bool;
  cache : Cache.t;
  metrics : Metrics.t;
  admission : Tmx_runtime.Contention.Admission.t;
  stop_flag : bool Atomic.t;
  mutable domains : unit Domain.t list;
  stop_lock : Mutex.t;
  mutable cleaned : bool;
}

let cache t = t.cache
let stopping t = Atomic.get t.stop_flag
let server_addresses t = addresses t.listener

(* deadlines and latency are durations, so they live on the monotonic
   clock — an NTP step or TZ change mid-request must not expire (or
   un-expire) anything *)
let now_ns = Tmx_runtime.Clock.now_ns
let now_s = Tmx_runtime.Clock.now_s

let log t fmt =
  if t.cfg.verbose then Fmt.epr ("tmx serve: " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter ("tmx serve: " ^^ fmt ^^ "@.")

(* -- request handling ------------------------------------------------------- *)

let resolve_litmus (req : Protocol.request) =
  match (req.name, req.program) with
  | Some n, _ -> (
      match Catalog.find n with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "unknown litmus test %S" n))
  | None, Some src -> (
      match Parse.parse src with
      | l -> Ok l
      | exception Parse.Error m -> Error m)
  | None, None -> Error "request needs \"name\" or \"program\""

let resolve_model (req : Protocol.request) =
  match Model.by_name req.model with
  | Some m -> Ok m
  | None -> Error (Printf.sprintf "unknown model %S" req.model)

(* inclusive, so a deadline_ms of 0 is expired at dispatch even when the
   clock has not ticked since the deadline was computed *)
let expired deadline =
  match deadline with None -> false | Some d -> now_s () >= d

let deadline_error t ?id ~verb () =
  Metrics.deadline_exceeded t.metrics;
  Protocol.error ?id ~verb "deadline exceeded"

(* Both must resolve, then [f litmus model]. *)
let with_target (req : Protocol.request) f =
  match resolve_litmus req with
  | Error e -> Protocol.error ?id:req.id ~verb:req.verb e
  | Ok litmus -> (
      match resolve_model req with
      | Error e -> Protocol.error ?id:req.id ~verb:req.verb e
      | Ok model -> f litmus model)

let result_fields (r : Enumerate.result) =
  [
    ("truncated", Json.bool r.truncated);
    ("capped", Json.bool r.capped);
    ("graphs", Json.int r.graphs);
  ]

let handle_outcomes t (req : Protocol.request) =
  with_target req (fun litmus model ->
      let v, hit = Cache.memo t.cache ~config:t.cfg.enum model litmus.program in
      let outcomes = Enumerate.outcomes v.result in
      Protocol.ok ?id:req.id ~verb:req.verb
        ([
           ("cached", Json.bool (hit = `Hit));
           ("count", Json.int (List.length outcomes));
           ( "outcomes",
             Json.Arr
               (List.map (fun o -> Json.str (Fmt.str "%a" Outcome.pp o)) outcomes)
           );
         ]
        @ result_fields v.result))

let handle_races t (req : Protocol.request) =
  with_target req (fun litmus model ->
      let v, hit = Cache.memo t.cache ~config:t.cfg.enum model litmus.program in
      let racy = Array.fold_left (fun n r -> if r <> [] then n + 1 else n) 0 v.races in
      let mixed = Array.fold_left (fun n m -> if m then n + 1 else n) 0 v.mixed in
      Protocol.ok ?id:req.id ~verb:req.verb
        ([
           ("cached", Json.bool (hit = `Hit));
           ("executions", Json.int (List.length v.result.executions));
           ("racy", Json.int racy);
           ("mixed", Json.int mixed);
         ]
        @ result_fields v.result))

let handle_lint t (req : Protocol.request) =
  match resolve_litmus req with
  | Error e -> Protocol.error ?id:req.id ~verb:req.verb e
  | Ok litmus ->
      let model =
        match resolve_model req with Ok m -> m | Error _ -> Model.programmer
      in
      (* lint is model-independent; a cache entry under any model carries
         it.  Hit or not, the full report is recomputed live — the lint
         is linear-ish, the entry only pins the summary counters. *)
      let cached_counts =
        Option.map
          (fun (v : Cache.verdict) ->
            (v.lint_race_free, v.lint_findings, v.lint_mixed))
          (Cache.find t.cache ~config:t.cfg.enum model litmus.program)
      in
      let report = Tmx_analysis.Lint.lint litmus.program in
      let race_free, findings, mixed =
        match cached_counts with
        | Some c -> c
        | None ->
            ( Tmx_analysis.Lint.race_free report,
              List.length report.findings,
              Tmx_analysis.Lint.mixed_count report )
      in
      let report_json =
        match Json.of_string (Tmx_analysis.Lint.to_json report) with
        | Ok j -> j
        | Error _ -> Json.Null
      in
      Protocol.ok ?id:req.id ~verb:req.verb
        [
          ("cached", Json.bool (cached_counts <> None));
          ("race_free", Json.bool race_free);
          ("findings", Json.int findings);
          ("mixed", Json.int mixed);
          ("report", report_json);
        ]

let handle_check t (req : Protocol.request) =
  with_target req (fun litmus _model ->
      let misses = ref 0 in
      let enumerate ~config model p =
        let v, hit = Cache.memo t.cache ~config model p in
        if hit = `Miss then incr misses;
        v.Cache.result
      in
      let report = Litmus.run ~config:t.cfg.enum ~enumerate litmus in
      Protocol.ok ?id:req.id ~verb:req.verb
        [
          ("cached", Json.bool (!misses = 0));
          ("passed", Json.bool (Litmus.passed report));
          ( "results",
            Json.Arr
              (List.map
                 (fun (r : Litmus.check_result) ->
                   Json.Obj
                     [
                       ( "model",
                         Json.str (Litmus.model_of_check r.check).Model.name );
                       ("descr", Json.str (Litmus.descr_of_check r.check));
                       ("ok", Json.bool r.ok);
                       ("detail", Json.str r.detail);
                     ])
                 report.results) );
          ("truncated", Json.bool report.truncated);
          ("capped", Json.bool report.capped);
          ( "static",
            Json.str (Fmt.str "%a" Tmx_analysis.Lint.pp_verdict report.lint) );
        ])

let handle_stats t (req : Protocol.request) =
  let c = Cache.stats t.cache in
  let snap = Metrics.snapshot t.metrics in
  Protocol.ok ?id:req.id ~verb:req.verb
    [
      ( "cache",
        Json.Obj
          [
            ("hits", Json.int c.hits);
            ("misses", Json.int c.misses);
            ("stores", Json.int c.stores);
            ("evictions", Json.int c.evictions);
            ("load_failures", Json.int c.load_failures);
            ("resident", Json.int (Cache.resident t.cache));
            ("shards", Json.int (Cache.shard_count t.cache));
          ] );
      ("metrics", Metrics.snapshot_to_json snap);
    ]

let rec handle_single t ~deadline (req : Protocol.request) =
  if expired deadline then deadline_error t ?id:req.id ~verb:req.verb ()
  else
    match req.verb with
    | "ping" -> Protocol.ok ?id:req.id ~verb:"ping" []
    | "outcomes" -> handle_outcomes t req
    | "races" -> handle_races t req
    | "lint" -> handle_lint t req
    | "check" -> handle_check t req
    | "stats" -> handle_stats t req
    | "shutdown" ->
        Atomic.set t.stop_flag true;
        Protocol.ok ?id:req.id ~verb:"shutdown" []
    | "batch" -> handle_batch t ~deadline req
    | v -> Protocol.error ?id:req.id ~verb:v (Printf.sprintf "unknown verb %S" v)

and handle_batch t ~deadline (req : Protocol.request) =
  let subs = Array.of_list req.subrequests in
  (* fan across the domain pool; the deadline is re-checked at each
     sub-request boundary, so an expired batch drains cheaply — already
     running enumerations complete (and populate the cache) *)
  let responses =
    Pool.run_tasks ~jobs:t.cfg.jobs ~tasks:(Array.length subs) (fun i ->
        let sub = subs.(i) in
        let deadline =
          match (deadline, sub.deadline_ms) with
          | d, None -> d
          | None, Some ms -> Some (now_s () +. (float_of_int ms /. 1000.))
          | Some d, Some ms ->
              Some (Float.min d (now_s () +. (float_of_int ms /. 1000.)))
        in
        if sub.verb = "batch" then
          Protocol.error ?id:sub.id ~verb:"batch" "batch requests cannot nest"
        else
          try handle_single t ~deadline sub
          with e ->
            Protocol.error ?id:sub.id ~verb:sub.verb (Printexc.to_string e))
  in
  let cached =
    Array.fold_left
      (fun n r ->
        match Option.bind (Json.mem "cached" r) Json.to_bool with
        | Some true -> n + 1
        | _ -> n)
      0 responses
  in
  let ok_count =
    Array.fold_left (fun n r -> if Protocol.response_ok r then n + 1 else n) 0 responses
  in
  Protocol.ok ?id:req.id ~verb:"batch"
    [
      ("count", Json.int (Array.length responses));
      ("ok_count", Json.int ok_count);
      ("cached", Json.int cached);
      ("responses", Json.Arr (Array.to_list responses));
    ]

(* verbs that must keep answering under overload: liveness probes,
   observability, and the off switch *)
let admission_exempt = function
  | "ping" | "stats" | "shutdown" -> true
  | _ -> false

let serve_line t line =
  Metrics.incr_inflight t.metrics;
  let t0 = now_ns () in
  let verb, resp =
    match Protocol.of_line line with
    | Error e -> ("other", Protocol.error ~verb:"error" e)
    | Ok req ->
        let handle () =
          let deadline =
            Option.map
              (fun ms -> now_s () +. (float_of_int ms /. 1000.))
              req.deadline_ms
          in
          try handle_single t ~deadline req
          with e ->
            Protocol.error ?id:req.id ~verb:req.verb (Printexc.to_string e)
        in
        if admission_exempt req.verb then (req.verb, handle ())
        else
          ( req.verb,
            Tmx_runtime.Contention.Admission.with_admission t.admission handle
              ~shed:(fun () ->
                Metrics.shed t.metrics;
                Protocol.overloaded ?id:req.id ~verb:req.verb ()) )
  in
  Metrics.record t.metrics ~verb ~ok:(Protocol.response_ok resp)
    ~latency_ns:(now_ns () - t0);
  Metrics.decr_inflight t.metrics;
  resp

(* -- connection loop -------------------------------------------------------- *)

(* a signal landing mid-write (EINTR) or a full send buffer on a
   non-blocking socket (EAGAIN/EWOULDBLOCK) must not abandon the rest of
   the response — retry, waiting for writability first in the EAGAIN
   case, exactly as the read path retries.  Any other error (EPIPE from
   a vanished client) still escapes and tears down the connection. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (try ignore (Unix.select [] [ fd ] [] 0.25)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off
  in
  go 0

let handle_conn t fd =
  (* short read timeout so an idle connection notices the stop flag *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25 with _ -> ());
  (* byte queue with an explicit consume offset: chunks append to the
     buffer, line extraction scans only bytes not yet examined, and the
     consumed prefix is dropped once it passes a threshold — each byte
     is appended, scanned and copied O(1) times, where re-building the
     buffer per line made a large pipelined batch quadratic *)
  let pending = Buffer.create 1024 in
  let off = ref 0 (* start of the unconsumed region *)
  and scanned = ref 0 (* invariant: no '\n' in [!off, !scanned) *) in
  let take_line () =
    let len = Buffer.length pending in
    let i = ref (max !off !scanned) in
    while !i < len && Buffer.nth pending !i <> '\n' do incr i done;
    scanned := !i;
    if !i >= len then None
    else
      let line = Buffer.sub pending !off (!i - !off) in
      off := !i + 1;
      scanned := !off;
      (if !off = len then (
         Buffer.clear pending;
         off := 0;
         scanned := 0)
       else if !off > 65536 then (
         let rest = Buffer.sub pending !off (len - !off) in
         Buffer.clear pending;
         Buffer.add_string pending rest;
         off := 0;
         scanned := 0));
      Some line
  in
  let chunk = Bytes.create 4096 in
  let rec read_line () =
    match take_line () with
    | Some line -> Some line
    | None ->
        if Atomic.get t.stop_flag then None
        else (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              read_line ()
          | exception Unix.Unix_error (_, _, _) -> None
          | 0 -> None (* EOF; a partial pending line is a dropped request *)
          | n ->
              Buffer.add_subbytes pending chunk 0 n;
              read_line ())
  in
  let rec loop () =
    match read_line () with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        let resp = serve_line t line in
        (* the client may be gone by now (disconnect mid-request): the
           write fails with EPIPE (SIGPIPE is ignored) and only this
           connection dies *)
        write_all fd (Json.to_string resp ^ "\n");
        if Atomic.get t.stop_flag then () else loop ()
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with _ -> ()

(* low-latency responses on the TCP transport: NDJSON lines are tiny,
   so Nagle would batch them behind the previous ack *)
let tune_accepted fd =
  try
    match Unix.getpeername fd with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | _ -> ()
  with _ -> ()

let worker_loop t =
  let fds = listen_fds t.listener in
  (* select, not bare accept: one loop watches both transports, and the
     timeout doubles as the stop-flag poll (no wakeup hack needed) *)
  let rec go () =
    if Atomic.get t.stop_flag then ()
    else
      match Unix.select fds [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> () (* listener closed: stopping *)
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept lfd with
              | exception
                  Unix.Unix_error
                    ( ( Unix.ECONNABORTED | Unix.EINTR | Unix.EAGAIN
                      | Unix.EWOULDBLOCK ),
                      _,
                      _ ) ->
                  () (* a sibling worker (or process) won this accept *)
              | exception Unix.Unix_error _ -> ()
              | fd, _ ->
                  if Atomic.get t.stop_flag then (try Unix.close fd with _ -> ())
                  else (
                    log t "connection accepted";
                    tune_accepted fd;
                    handle_conn t fd))
            ready;
          go ()
  in
  go ()

(* -- lifecycle -------------------------------------------------------------- *)

let start ?listener cfg =
  (* a dying client must cost us an EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let owns_listener, listener =
    match listener with Some l -> (false, l) | None -> (true, listen cfg)
  in
  let t =
    {
      cfg;
      listener;
      owns_listener;
      cache =
        Cache.create ~capacity:cfg.cache_capacity ~shards:cfg.cache_shards
          ~dir:cfg.cache_dir ();
      metrics = Metrics.create ();
      admission =
        Tmx_runtime.Contention.Admission.create ~limit:cfg.max_inflight;
      stop_flag = Atomic.make false;
      domains = [];
      stop_lock = Mutex.create ();
      cleaned = false;
    }
  in
  t.domains <-
    List.init (max 1 cfg.workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  log t "listening on %s (%d workers)"
    (String.concat ", " (addresses listener))
    (List.length t.domains);
  t

let stop t =
  Mutex.lock t.stop_lock;
  let first = not t.cleaned in
  t.cleaned <- true;
  Mutex.unlock t.stop_lock;
  if first then (
    Atomic.set t.stop_flag true;
    (* workers poll the flag from the select/read timeouts; no wakeup
       connection needed *)
    List.iter Domain.join t.domains;
    if t.owns_listener then (
      close_listener t.listener;
      Option.iter
        (fun (_, path) -> try Unix.unlink path with _ -> ())
        t.listener.l_unix);
    log t "stopped")

let wait t =
  while not (Atomic.get t.stop_flag) do
    Unix.sleepf 0.05
  done;
  stop t
