(** Exhaustive enumeration of the consistent executions of a litmus
    program, herd-style.

    Rather than enumerating raw interleavings, the enumerator works over
    execution graphs — per-thread control paths × reads-from choices ×
    per-location coherence orders × fence/transaction orderings — and
    builds one well-formed linearization per graph through the
    WF-derived ordering constraints (initialization, program order, WF8
    reads-from, WF9–WF11 obscured accesses, WF12 fence sides).  This is
    complete by the paper's observation that WF8–WF11 are redundant with
    respect to the consistency axioms at the graph level; every produced
    trace is re-checked against the full well-formedness scan (a
    violation raises, as an enumerator-bug detector). *)

type config = {
  fuel : int;  (** loop unrollings per thread *)
  domain_iters : int;  (** value-domain fixpoint rounds *)
  max_graphs : int;  (** cap on candidate graphs *)
  jobs : int;
      (** domains to enumerate on (default 1 = sequential).  With
          [jobs > 1] the candidate space is split into tasks — one per
          (thread-path combination, first reads-from choice), the top of
          the linearization prefix tree — dispatched to a work-stealing
          domain pool and merged deterministically: the result
          (executions, their order, [graphs], [capped]) is bit-identical
          to the sequential run for every [jobs].  Runs whose estimated
          candidate space is too small to amortize a domain pool fall
          back to the sequential path automatically. *)
}

val default_config : config

val config_key : config -> string
(** The cache-key projection of a config: the fields that can change the
    result ([fuel], [domain_iters], [max_graphs]).  [jobs] is excluded —
    parallel and sequential runs are bit-identical by construction (and
    pinned so by the [parallel] suite), so they may share a cache
    entry. *)

type execution = { trace : Tmx_core.Trace.t; outcome : Outcome.t }

type result = {
  executions : execution list;  (** the consistent executions *)
  truncated : bool;  (** a path hit the loop bound *)
  capped : bool;  (** the graph cap was hit *)
  graphs : int;  (** candidate graphs examined *)
}

val run : ?config:config -> Tmx_core.Model.t -> Tmx_lang.Ast.program -> result
val outcomes : result -> Outcome.t list
val allowed : result -> (Outcome.t -> bool) -> bool
val forbidden : result -> (Outcome.t -> bool) -> bool
