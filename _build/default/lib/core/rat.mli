(** Exact rational numbers on native integers.

    Timestamps in the paper's trace semantics are rationals so that a new
    write can always be placed strictly between two existing writes in
    coherence order.  This module provides exactly the operations the
    formalism needs; it is not a general-purpose bignum library. *)

type t

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Invalid_argument if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t

val between : t -> t -> t
(** [between a b] is a rational strictly between [a] and [b] when
    [a < b] (the midpoint). *)

val succ : t -> t
val pred : t -> t

val to_float : t -> float
val pp : t Fmt.t
val to_string : t -> string
