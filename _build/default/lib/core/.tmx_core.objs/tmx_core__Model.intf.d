lib/core/model.mli: Fmt
