(** One choice of thread paths (a "combo") and its candidate-graph
    machinery, shared by every enumeration strategy: the flattened event
    list with transaction structure, the per-candidate choice points
    (reads-from sources, per-location coherence permutations, fence
    sides), and the WF-constraint linearizer that turns one selection of
    those choices into a concrete well-formed trace.

    The unreduced enumerator iterates the full selection product and
    linearizes every candidate; the reduced enumerator
    ({!Tmx_exec.Reduce}) walks the same product as a prefix tree,
    pruning subtrees, and only linearizes the survivors — both through
    the functions here, so a given selection yields bit-identical traces
    whichever strategy picked it (docs/ENUMERATION.md). *)

open Tmx_core

type gevent = {
  thread : int;
  proto : Proto.proto;
  txn : int;  (** index of the owning PBegin, or -1 for plain events *)
  aborted : bool;  (** member of an aborted transaction *)
}

val permutations : 'a list -> 'a list list
(** All orderings, in a fixed deterministic order (the enumeration order
    of coherence permutations). *)

val product : 'a list list -> ('a list -> unit) -> unit
(** [product choices k] calls [k] with every selection of one element
    per choice list, rightmost varying fastest — the unreduced
    enumerator's iteration order, which the prefix-tree walk mirrors. *)

val same_txn : gevent array -> int -> int -> bool
(** Same event, or members of the same transaction. *)

type fence_choice = Commit_before | Fence_before
(** The two WF12 sides for an unordered (quiescence fence, transaction)
    pair: the transaction's resolution linearizes before the fence, or
    the fence before the Begin. *)

(** {1 Per-combo preparation} *)

type t = {
  paths : Proto.path list;  (** one path per thread, in thread order *)
  ev : gevent array;  (** the flattened events, per-thread blocks *)
  reads : int list;  (** event indices of reads, ascending *)
  fences : int list;  (** event indices of quiescence fences *)
  writes_to : (string, int list) Hashtbl.t;  (** location -> writes *)
}

val prepare : Proto.path list -> t

val writes_of : t -> string -> int list
val locs_written : t -> string list

val rf_candidates : t -> int -> int list
(** Reads-from candidates of a read: same location and value, aborted
    sources only within the reader's transaction, same-thread sources
    only from earlier in program order.  [-1] encodes the initializing
    write (candidates of value-0 reads always include it). *)

val first_read_width : t -> int option
(** [Some (List.length (rf_candidates c first_read))] — the top level of
    the candidate prefix tree, which the parallel driver fans tasks
    over; [None] when the combo has no reads. *)

val fence_pairs : t -> ((int * int) * fence_choice list) list
(** The WF12 choice points: one ((fence, Begin), sides) entry per
    quiescence fence and transaction touching its location, with
    same-thread pairs forced to the single side program order allows. *)

val estimated_graphs : t -> int
(** Saturating upper estimate of the combo's candidate count:
    Π |rf candidates| × Π |coherence permutations| × Π |fence sides|.
    Cheap arithmetic over the prepared indices, used to decide whether a
    run is worth a domain pool at all. *)

val resolution_of : t -> int -> int option
(** The PCommit/PAbort event resolving transaction [b], if any. *)

(** {1 One candidate graph, as the choices that pick it out} *)

(** Keyed (read index, location, fence pair) rather than positional so
    that symmetry reduction can transport a representative combo's
    selection onto an isomorphic combo by renaming the keys
    ({!Tmx_exec.Symmetry.map_selection}). *)
type selection = {
  rf_sel : (int * int) list;
      (** read -> chosen source (-1 = initial value) *)
  ww_sel : (string * int list) list;
      (** location -> coherence permutation *)
  fence_sel : ((int * int) * fence_choice) list;
}

val linearize : locs:string list -> t -> selection -> Trace.t option
(** The one trace of a candidate graph: timestamps from the chosen
    coherence orders, the WF-derived ordering constraints
    (initialization, program order, WF8 reads-from, WF9–WF11 obscured
    accesses, WF12 fence sides), and a topological sort preferring to
    keep the open transaction contiguous.  [None] when the constraints
    are cyclic (no well-formed linearization exists).  Every produced
    trace is re-checked against the full well-formedness scan; a
    violation raises, as an enumerator-bug detector. *)

val outcome : locs:string list -> t -> Trace.t -> Outcome.t
(** Final registers from the paths' environments, final memory from the
    trace. *)
