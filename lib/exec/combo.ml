(* One choice of thread paths ("combo") and its candidate-graph
   machinery, shared by every enumeration strategy: the event list with
   transaction structure, the per-candidate choice points (reads-from
   sources, per-location coherence permutations, fence sides), and the
   WF-constraint linearizer that turns one selection of those choices
   into a concrete well-formed trace.

   The unreduced enumerator iterates the full selection product and
   linearizes every candidate; the reduced enumerator walks the same
   product as a prefix tree, pruning subtrees, and only linearizes the
   survivors — both through the functions here, so a given selection
   yields bit-identical traces whichever strategy picked it. *)

open Tmx_core

type gevent = {
  thread : int;
  proto : Proto.proto;
  txn : int; (* index of owning PBegin, or -1 *)
  aborted : bool; (* in an aborted transaction *)
}

let build_events (paths : Proto.path list) =
  let protos =
    List.concat
      (List.mapi
         (fun i (p : Proto.path) ->
           List.map (fun pr -> (i, pr)) p.protos)
         paths)
  in
  let events =
    Array.of_list
      (List.map (fun (thread, proto) -> { thread; proto; txn = -1; aborted = false }) protos)
  in
  (* transaction membership + status, per thread *)
  let n = Array.length events in
  let open_txn = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let e = events.(i) in
    match e.proto with
    | Proto.PBegin ->
        Hashtbl.replace open_txn e.thread i;
        events.(i) <- { e with txn = i }
    | Proto.PCommit | Proto.PAbort ->
        let b = Option.value (Hashtbl.find_opt open_txn e.thread) ~default:(-1) in
        events.(i) <- { e with txn = b };
        Hashtbl.remove open_txn e.thread
    | _ ->
        let b = Option.value (Hashtbl.find_opt open_txn e.thread) ~default:(-1) in
        events.(i) <- { e with txn = b }
  done;
  (* mark aborted transactions *)
  let aborted_txns = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      match e.proto with
      | Proto.PAbort when e.txn >= 0 -> Hashtbl.replace aborted_txns e.txn ()
      | _ -> ())
    events;
  Array.map
    (fun e -> { e with aborted = e.txn >= 0 && Hashtbl.mem aborted_txns e.txn })
    events

(* -- small combinatorics helpers ----------------------------------------- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* product over a list of choice lists, calling [k] with each selection
   (as a list aligned with the input). *)
let rec product choices k =
  match choices with
  | [] -> k []
  | c :: rest -> List.iter (fun x -> product rest (fun sel -> k (x :: sel))) c

let same_txn (ev : gevent array) i j = i = j || (ev.(i).txn >= 0 && ev.(i).txn = ev.(j).txn)

let txn_touches_loc (ev : gevent array) b x =
  let n = Array.length ev in
  let rec go i =
    i < n
    && ((ev.(i).txn = b
        &&
        match ev.(i).proto with
        | Proto.PWrite (y, _) | Proto.PRead (y, _) -> String.equal x y
        | _ -> false)
       || go (i + 1))
  in
  go 0

type fence_choice = Commit_before | Fence_before

(* -- per-combo preparation ------------------------------------------------ *)

type t = {
  paths : Proto.path list;
  ev : gevent array;
  reads : int list;
  fences : int list;
  writes_to : (string, int list) Hashtbl.t;
}

let prepare (paths : Proto.path list) =
  let ev = build_events paths in
  let n = Array.length ev in
  let reads = ref [] and fences = ref [] in
  let writes_to = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    match ev.(i).proto with
    | Proto.PRead _ -> reads := i :: !reads
    | Proto.PWrite (x, _) ->
        Hashtbl.replace writes_to x (i :: Option.value (Hashtbl.find_opt writes_to x) ~default:[])
    | Proto.PQfence _ -> fences := i :: !fences
    | _ -> ()
  done;
  { paths; ev; reads = !reads; fences = !fences; writes_to }

let writes_of combo x = Option.value (Hashtbl.find_opt combo.writes_to x) ~default:[]

let locs_written combo =
  List.sort_uniq compare
    (Hashtbl.fold (fun x _ acc -> x :: acc) combo.writes_to [])

(* reads-from candidates: same location and value; an aborted source
   must be in the reader's own transaction; a same-thread source must
   precede the read in program order (else no linearization can put it
   before the read). [-1] encodes reading the initial value 0. *)
let rf_candidates combo i =
  let ev = combo.ev in
  match ev.(i).proto with
  | Proto.PRead (x, v) ->
      let from_writes =
        List.filter
          (fun j ->
            (match ev.(j).proto with
            | Proto.PWrite (_, w) -> w = v
            | _ -> false)
            && (not (ev.(j).aborted && not (same_txn ev i j)))
            && not (ev.(j).thread = ev.(i).thread && j > i))
          (writes_of combo x)
      in
      if v = 0 then -1 :: from_writes else from_writes
  | _ -> assert false

(* Reads-from candidates of the combo's first read — the top level of
   the candidate prefix tree, which the parallel driver fans tasks
   over.  [None] when the combo has no reads. *)
let first_read_width combo =
  match combo.reads with
  | [] -> None
  | r :: _ -> Some (List.length (rf_candidates combo r))

(* fence ordering choices per (fence, transaction touching its
   location): same-thread pairs are forced by program order. *)
let fence_pairs combo =
  let ev = combo.ev in
  let n = Array.length ev in
  List.concat_map
    (fun q ->
      let x = match ev.(q).proto with Proto.PQfence x -> x | _ -> assert false in
      List.filter_map
        (fun b ->
          if ev.(b).proto = Proto.PBegin && txn_touches_loc ev b x then
            if ev.(b).thread = ev.(q).thread then
              (* forced: the side matching program order *)
              if b < q then Some ((q, b), [ Commit_before ])
              else Some ((q, b), [ Fence_before ])
            else Some ((q, b), [ Commit_before; Fence_before ])
          else None)
        (List.init n Fun.id))
    combo.fences

(* Saturating upper estimate of a combo's candidate-graph count:
   Π |rf candidates| × Π |coherence permutations| × Π |fence sides|.
   Cheap arithmetic over the prepared indices, used to decide whether a
   run is worth a domain pool at all. *)
let estimated_graphs combo =
  let cap = 1_000_000_000 in
  let sat a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b in
  let rec fact k = if k <= 1 then 1 else sat k (fact (k - 1)) in
  let rf =
    List.fold_left
      (fun acc r -> sat acc (List.length (rf_candidates combo r)))
      1 combo.reads
  in
  let ww =
    Hashtbl.fold (fun _x ws acc -> sat acc (fact (List.length ws))) combo.writes_to 1
  in
  let fences =
    List.fold_left (fun acc (_, opts) -> sat acc (List.length opts)) 1 (fence_pairs combo)
  in
  sat (sat rf ww) fences

(* the resolution (Commit or Abort) of transaction [b], if any *)
let resolution_of combo b =
  let ev = combo.ev in
  let n = Array.length ev in
  let rec go i =
    if i >= n then None
    else if
      ev.(i).txn = b
      && (ev.(i).proto = Proto.PCommit || ev.(i).proto = Proto.PAbort)
    then Some i
    else go (i + 1)
  in
  go 0

(* -- one candidate graph, as the choices that pick it out ----------------- *)

(* A selection is keyed (read index, location, fence pair) rather than
   positional so that symmetry reduction can transport a representative
   combo's selection onto an isomorphic combo by renaming the keys. *)
type selection = {
  rf_sel : (int * int) list; (* read -> chosen source (-1 = initial value) *)
  ww_sel : (string * int list) list; (* location -> coherence permutation *)
  fence_sel : ((int * int) * fence_choice) list;
}

(* -- linearization -------------------------------------------------------- *)

(* Build the one trace of a candidate graph: timestamps from the chosen
   coherence orders, the WF-derived ordering constraints
   (initialization, program order, WF8 reads-from, WF9–WF11 obscured
   accesses, WF12 fence sides), and a topological sort that prefers to
   keep the open transaction contiguous.  [None] when the constraints
   are cyclic (the candidate has no well-formed linearization).  Every
   produced trace is re-checked against the full well-formedness scan; a
   violation raises, as an enumerator-bug detector. *)
let linearize ~locs combo { rf_sel; ww_sel; fence_sel } =
  let ev = combo.ev in
  let n = Array.length ev in
  (* timestamps: position in the chosen coherence order *)
  let ts_of_write = Hashtbl.create 16 in
  List.iter
    (fun (_x, perm) ->
      List.iteri
        (fun k j -> Hashtbl.replace ts_of_write j (Rat.of_int (k + 1)))
        perm)
    ww_sel;
  let rf = Hashtbl.create 16 in
  List.iter (fun (r, w) -> Hashtbl.replace rf r w) rf_sel;
  let ts_of_read r =
    match Hashtbl.find rf r with
    | -1 -> Rat.zero
    | w -> Hashtbl.find ts_of_write w
  in
  (* WF-derived ordering constraints *)
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  let edge a b =
    succs.(a) <- b :: succs.(a);
    indeg.(b) <- indeg.(b) + 1
  in
  (* program order: consecutive events of each thread *)
  let last_of_thread = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    (match Hashtbl.find_opt last_of_thread ev.(i).thread with
    | Some j -> edge j i
    | None -> ());
    Hashtbl.replace last_of_thread ev.(i).thread i
  done;
  (* reads-from (WF8) *)
  List.iter (fun (r, w) -> if w >= 0 then edge w r) rf_sel;
  (* WF9: transactional write before any coherence-later committed
     transactional write *)
  List.iter
    (fun (_x, perm) ->
      let parr = Array.of_list perm in
      let m = Array.length parr in
      for i = 0 to m - 1 do
        for j = i + 1 to m - 1 do
          let b = parr.(i) and c = parr.(j) in
          if ev.(b).txn >= 0 && ev.(c).txn >= 0 && not ev.(c).aborted then
            edge b c
        done
      done)
    ww_sel;
  (* WF10/WF11: a read before any write that obscures its source
     (committed-foreign for transactional sources, same-transaction
     always) *)
  List.iter
    (fun (r, w) ->
      if ev.(r).txn >= 0 then begin
        let src_ts = ts_of_read r in
        (* the initializing write is transactional (committed), like any
           other member of the initializing transaction *)
        let src_is_txn = w = -1 || ev.(w).txn >= 0 in
        let x =
          match ev.(r).proto with
          | Proto.PRead (x, _) -> x
          | _ -> assert false
        in
        List.iter
          (fun c ->
            if Rat.lt src_ts (Hashtbl.find ts_of_write c) then begin
              if src_is_txn && ev.(c).txn >= 0 && not ev.(c).aborted then
                edge r c;
              if same_txn ev r c then edge r c
            end)
          (writes_of combo x)
      end)
    rf_sel;
  (* fence choices (WF12) *)
  List.iter
    (fun ((q, b), choice) ->
      match choice with
      | Commit_before -> (
          (* resolution of txn b before fence q *)
          match resolution_of combo b with
          | Some r -> edge r q
          | None -> ())
      | Fence_before -> edge q b)
    fence_sel;
  (* topological sort, preferring to keep the currently open
     transaction contiguous *)
  let emitted = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  let current_txn = ref (-1) in
  let ok = ref true in
  while !ok && !count < n do
    (* candidate: available event, prefer same txn *)
    let pick = ref (-1) in
    (try
       for i = 0 to n - 1 do
         if (not emitted.(i)) && indeg.(i) = 0 then begin
           if !pick = -1 then pick := i;
           if !current_txn >= 0 && ev.(i).txn = !current_txn then begin
             pick := i;
             raise Exit
           end
         end
       done
     with Exit -> ());
    if !pick = -1 then ok := false
    else begin
      let i = !pick in
      emitted.(i) <- true;
      incr count;
      order := i :: !order;
      (match ev.(i).proto with
      | Proto.PBegin -> current_txn := i
      | Proto.PCommit | Proto.PAbort -> current_txn := -1
      | _ -> ());
      List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(i)
    end
  done;
  if not !ok then None
  else begin
    let order = List.rev !order in
    let to_action i =
      let open Action in
      match ev.(i).proto with
      | Proto.PWrite (x, v) ->
          Write { loc = x; value = v; ts = Hashtbl.find ts_of_write i }
      | Proto.PRead (x, v) -> Read { loc = x; value = v; ts = ts_of_read i }
      | Proto.PBegin -> Begin
      | Proto.PCommit -> Commit
      | Proto.PAbort -> Abort
      | Proto.PQfence x -> Qfence x
    in
    let body =
      List.map
        (fun i -> { Action.thread = ev.(i).thread; act = to_action i })
        order
    in
    let trace = Trace.make ~locs body in
    (match Wellformed.violations trace with
    | [] -> ()
    | vs ->
        Fmt.failwith
          "Enumerate: internal error, ill-formed linearization:@ %a@ trace:@ %a"
          Fmt.(list ~sep:comma Wellformed.pp_violation)
          vs Trace.pp trace);
    Some trace
  end

let outcome ~locs combo trace =
  Outcome.make
    ~envs:(List.map (fun (p : Proto.path) -> p.env) combo.paths)
    ~mem:
      (List.map
         (fun x -> (x, Option.value (Trace.final_value trace x) ~default:0))
         locs)
