(* Minimal recursive-descent JSON, shared by the cache entries and the
   wire protocol.  Mirrors the reader in bench/compare.ml; kept separate
   because tmx_bench_compare is a leaf library with no writer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C at offset %d, found %C" c !pos c'
    | None -> fail "expected %C, found end of input" c
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char buf '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char buf '\012';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape %S" hex
              in
              (* service strings are ASCII; keep the escape lossless for
                 the BMP by encoding UTF-8 by hand *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then (
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
              else (
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail "bad number %S at offset %d" lit start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          Obj (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          Arr (elems [])
    | Some '"' -> Str (parse_string ())
    | Some 't' ->
        pos := !pos + 4;
        if !pos > n || String.sub s (!pos - 4) 4 <> "true" then
          fail "bad literal";
        Bool true
    | Some 'f' ->
        pos := !pos + 5;
        if !pos > n || String.sub s (!pos - 5) 5 <> "false" then
          fail "bad literal";
        Bool false
    | Some 'n' ->
        pos := !pos + 4;
        if !pos > n || String.sub s (!pos - 4) 4 <> "null" then
          fail "bad literal";
        Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail "unexpected %C at offset %d" c !pos
    | None -> fail "unexpected end of input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    Ok v
  with Parse_error m -> Error m

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_to buf s;
        Buffer.add_char buf '"'
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_to buf k;
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let int n = Num (float_of_int n)
let str s = Str s
let bool b = Bool b
let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
