(* Structured event tracing for the runtime STM.

   Each domain records into its own ring buffer, so tracing adds no
   shared-memory contention to the hot path: a record is one atomic
   flag read (the enabled check), a timestamp, and three plain stores
   into a domain-local int array.  Events are packed as int triples
   (time, kind, detail) in a flat array rather than as records so that
   [snapshot] — which reads other domains' rings while they may still
   be writing — races only on plain integers: it can observe a stale or
   half-written *event*, never a torn pointer.  Tracing is diagnostics;
   a snapshot is a best-effort consistent view, exact whenever the
   traced domains are quiescent (as in tests and at the end of a bench
   stage).

   The ring keeps the most recent [capacity] events per domain;
   [dropped] counts what the ring overwrote, so a consumer knows when a
   trace is a suffix rather than the whole history. *)

type kind =
  | Begin  (** an optimistic attempt starts; detail = retry number *)
  | Read_validate_fail  (** a read (or commit-time validation) failed; detail = tvar id, -1 at commit *)
  | Lock_fail  (** a lock acquisition failed; detail = tvar id *)
  | Commit  (** detail = retry count the transaction needed *)
  | User_abort  (** detail = -1 *)
  | Escalate  (** the transaction took the serialized slow path; detail = retry count *)
  | Quiesce_start  (** detail = fenced tvar id, -1 for a global fence *)
  | Quiesce_end  (** detail = fenced tvar id, -1 for a global fence *)
  | Partial_abort  (** partial mode rolled back to a checkpoint; detail = kept read-set prefix *)

type event = {
  time_ns : int;  (** monotonic clock, nanoseconds *)
  domain : int;  (** recording domain's id *)
  kind : kind;
  detail : int;
}

let kind_to_int = function
  | Begin -> 0
  | Read_validate_fail -> 1
  | Lock_fail -> 2
  | Commit -> 3
  | User_abort -> 4
  | Escalate -> 5
  | Quiesce_start -> 6
  | Quiesce_end -> 7
  | Partial_abort -> 8

let kind_of_int = function
  | 0 -> Begin
  | 1 -> Read_validate_fail
  | 2 -> Lock_fail
  | 3 -> Commit
  | 4 -> User_abort
  | 5 -> Escalate
  | 6 -> Quiesce_start
  | 8 -> Partial_abort
  | _ -> Quiesce_end

let kind_name = function
  | Begin -> "begin"
  | Read_validate_fail -> "read-validate-fail"
  | Lock_fail -> "lock-fail"
  | Commit -> "commit"
  | User_abort -> "user-abort"
  | Escalate -> "escalate"
  | Quiesce_start -> "quiesce-start"
  | Quiesce_end -> "quiesce-end"
  | Partial_abort -> "partial-abort"

let stride = 3 (* time, kind, detail *)

type ring = {
  dom : int;
  buf : int array; (* capacity * stride *)
  capacity : int;
  mutable n : int; (* events ever recorded; cursor = n mod capacity *)
}

let enabled_flag = Atomic.make false
let default_capacity = Atomic.make 1024

(* every ring ever allocated; copy-on-append, like Registry.slots *)
let rings : ring array Atomic.t = Atomic.make [||]

let register r =
  let rec go () =
    let old = Atomic.get rings in
    let arr = Array.make (Array.length old + 1) r in
    Array.blit old 0 arr 0 (Array.length old);
    if not (Atomic.compare_and_set rings old arr) then go ()
  in
  go ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let capacity = max 1 (Atomic.get default_capacity) in
      let r =
        {
          dom = (Domain.self () :> int);
          buf = Array.make (capacity * stride) 0;
          capacity;
          n = 0;
        }
      in
      register r;
      r)

let enabled () = Atomic.get enabled_flag

let clear () =
  Array.iter (fun r -> r.n <- 0) (Atomic.get rings)

let enable ?capacity () =
  (match capacity with
  | Some c ->
      if c <= 0 then invalid_arg "Stm_trace.enable: capacity must be positive";
      Atomic.set default_capacity c
  | None -> ());
  clear ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let now_ns = Clock.now_ns

let record kind ?(detail = -1) () =
  if Atomic.get enabled_flag then begin
    let r = Domain.DLS.get ring_key in
    let i = r.n mod r.capacity * stride in
    r.buf.(i) <- now_ns ();
    r.buf.(i + 1) <- kind_to_int kind;
    r.buf.(i + 2) <- detail;
    r.n <- r.n + 1
  end

let dropped () =
  Array.fold_left
    (fun acc r -> acc + max 0 (r.n - r.capacity))
    0 (Atomic.get rings)

let snapshot () =
  let events = ref [] in
  Array.iter
    (fun r ->
      let n = r.n in
      let kept = min n r.capacity in
      for j = n - kept to n - 1 do
        let i = j mod r.capacity * stride in
        events :=
          {
            time_ns = r.buf.(i);
            domain = r.dom;
            kind = kind_of_int r.buf.(i + 1);
            detail = r.buf.(i + 2);
          }
          :: !events
      done)
    (Atomic.get rings);
  List.sort (fun a b -> compare (a.time_ns, a.domain) (b.time_ns, b.domain)) !events

let pp_event ppf e =
  Fmt.pf ppf "[%d.%09d] dom%d %s%s" (e.time_ns / 1_000_000_000)
    (e.time_ns mod 1_000_000_000)
    e.domain (kind_name e.kind)
    (if e.detail >= 0 then Fmt.str " #%d" e.detail else "")
