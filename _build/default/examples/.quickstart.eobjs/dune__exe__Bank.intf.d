examples/bank.mli:
