lib/harness/interp.ml: Ast Domain Fmt Hashtbl List Outcome Proto Stm Tmx_exec Tmx_lang Tmx_runtime Tvar
