examples/quickstart.mli:
