lib/core/race.ml: Action Hb Lift List Rel String Trace
