open Tmx_core
open Tmx_lang
open Tmx_exec

let test_atomic_blocks_atomic () =
  (* under the sequential reference semantics a transaction's intermediate
     states are invisible: the observer sees x=y always *)
  let p =
    Ast.(
      program ~locs:[ "x"; "y" ]
        [
          [ atomic [ store (loc "x") (int 1); store (loc "y") (int 1) ] ];
          [ atomic [ load "a" (loc "x"); load "b" (loc "y") ] ];
        ])
  in
  let r = Sc.run p in
  List.iter
    (fun (e : Sc.execution) ->
      Alcotest.(check bool) "snapshot consistent" true
        (Outcome.reg e.outcome 1 "a" = Outcome.reg e.outcome 1 "b"))
    r.executions

let test_abort_rolls_back () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 5); abort ]; load "r" (loc "x") ] ])
  in
  let r = Sc.run p in
  match r.executions with
  | [ e ] ->
      Alcotest.(check int) "rolled back" 0 (Outcome.reg e.outcome 0 "r");
      Alcotest.(check int) "memory clean" 0 (Outcome.mem e.outcome "x")
  | _ -> Alcotest.fail "expected one execution"

let test_traces_transactionally_sequential () =
  let p = (Option.get (Tmx_litmus.Catalog.find "privatization")).program in
  let r = Sc.run p in
  Alcotest.(check bool) "nonempty" true (r.executions <> []);
  List.iter
    (fun (e : Sc.execution) ->
      Alcotest.(check bool) "well-formed" true (Wellformed.is_well_formed e.trace);
      Alcotest.(check bool) "transactionally sequential" true
        (Sequentiality.transactionally_l_sequential e.trace);
      Alcotest.(check bool) "consistent" true
        (Consistency.consistent Model.programmer e.trace))
    r.executions

let test_sc_outcomes_subset_of_model () =
  List.iter
    (fun name ->
      let p = (Option.get (Tmx_litmus.Catalog.find name)).program in
      let sc = Sc.outcomes (Sc.run p) in
      let model = Enumerate.outcomes (Enumerate.run Model.programmer p) in
      List.iter
        (fun o ->
          Alcotest.(check bool)
            (Fmt.str "%s: sc outcome in model (%a)" name Outcome.pp o)
            true
            (List.exists (Outcome.equal o) model))
        sc)
    [ "privatization"; "publication"; "sb"; "ex3_4"; "doomed" ]

let test_interleaving_coverage () =
  (* both orders of two independent writers are explored *)
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ store (loc "x") (int 1) ]; [ store (loc "x") (int 2) ] ])
  in
  let finals =
    List.sort_uniq compare
      (List.map (fun o -> Outcome.mem o "x") (Sc.outcomes (Sc.run p)))
  in
  Alcotest.(check (list int)) "both final values" [ 1; 2 ] finals

let test_fuel () =
  let p =
    Ast.(program ~locs:[ "x" ] [ [ while_ (int 1) [ store (loc "x") (int 1) ] ] ])
  in
  let r = Sc.run ~config:{ fuel = 2 } p in
  Alcotest.(check bool) "truncated" true r.truncated;
  Alcotest.(check int) "no complete executions" 0 (List.length r.executions)

let suite =
  [
    Alcotest.test_case "atomic blocks are atomic" `Quick test_atomic_blocks_atomic;
    Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
    Alcotest.test_case "traces transactionally sequential" `Quick
      test_traces_transactionally_sequential;
    Alcotest.test_case "sc outcomes within model outcomes" `Quick
      test_sc_outcomes_subset_of_model;
    Alcotest.test_case "interleaving coverage" `Quick test_interleaving_coverage;
    Alcotest.test_case "fuel bounds loops" `Quick test_fuel;
  ]
