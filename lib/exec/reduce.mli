(** Reduced enumeration of one combo's candidate graphs — the dynamic
    partial-order reduction behind [Enumerate.Dpor].

    The unreduced enumerator iterates the full selection product
    (reads-from sources × per-location coherence permutations × fence
    sides) and evaluates every leaf by building a trace, lifting its
    relations and checking the axioms.  Here the same product is walked
    as a prefix tree whose nodes carry an incrementally maintained
    execution-graph state; a prefix is pruned — with its candidates
    bulk-claimed, so the accounting matches the unreduced enumerator
    exactly — as soon as a monotone condition dooms every leaf below it.
    The soundness argument is spelled out in docs/ENUMERATION.md. *)

open Tmx_core

(** Cheap per-path-selection feasibility: a combo enumerates zero
    candidates whenever some read's nonzero value has no writer in the
    selected paths, and this spots that from per-path summaries alone,
    so dead path selections are never prepared at all. *)
module Feasible : sig
  type t

  val make : Proto.path array array -> t
  (** Summaries of [tp.(thread).(choice)]: values written, nonzero
      values read. *)

  val check : t -> int array -> bool
  (** [check t sel] — false only if the combo selecting path [sel.(i)]
      for thread [i] provably enumerates zero candidates. *)
end

type plan
(** A prepared combo with its choice levels (reads-from per read,
    coherence permutation per written location, WF12 side per fence
    pair), their widths, and the transaction-class tables the
    incremental state updates against. *)

val make_plan : model:Model.t -> locs:string list -> Combo.t -> plan

val enumerate :
  ?pin:int ->
  claim:(int -> int option) ->
  emit:(int -> Combo.selection -> Trace.t -> unit) ->
  plan ->
  int
(** Walk the plan's candidates in unreduced product order, optionally
    pinning the first level's choice (the parallel task split).
    [claim k] accounts for [k] candidates and returns the ordinal of the
    first if it is to be processed ([None] past the graph cap); pruned
    subtrees are bulk-claimed, so ordinals and totals coincide with the
    unreduced enumerator.  [emit] receives each consistent candidate's
    ordinal, selection and linearized trace.  Returns the number of
    candidates whose leaf consistency check actually ran (the [explored]
    statistic). *)
