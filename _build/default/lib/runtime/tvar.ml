(* Transactional variables.

   A TVar is an integer cell guarded by a versioned lock word: even values
   are commit versions, odd values mark the cell as locked by a committing
   (or, in eager mode, executing) transaction.  Values are integers —
   matching the paper's model, whose locations hold integers — which keeps
   the implementation free of unsafe casts; aggregate state is built from
   arrays of TVars. *)

type t = {
  id : int;
  mutable value : int; (* protected by [lock] in transactional code *)
  lock : int Atomic.t; (* even: version; odd: locked *)
}

let next_id = Atomic.make 0

let make value = { id = Atomic.fetch_and_add next_id 1; value; lock = Atomic.make 0 }

let id v = v.id

let locked word = word land 1 = 1

(* Plain, non-transactional access: deliberately unsynchronized with the
   STM — this is the mixed-mode access the paper is about.  Safe only
   under the privatization/publication idioms (with [Stm.quiesce] where
   the idiom requires a fence). *)
let unsafe_read v = v.value
let unsafe_write v x = v.value <- x

(* try to lock; returns the previous version on success *)
let try_lock v =
  let word = Atomic.get v.lock in
  if locked word then None
  else if Atomic.compare_and_set v.lock word (word lor 1) then Some word
  else None

let unlock v ~version = Atomic.set v.lock version

let version_word v = Atomic.get v.lock

let pp ppf v = Fmt.pf ppf "tvar#%d=%d" v.id v.value
