(** A text format for litmus files, so the checker runs on user-written
    programs.

    {v
    name my-privatization
    locs x y

    thread 0:
      atomic { ry := y; if !ry { x := 1 } }

    thread 1:
      atomic { y := 1 }
      x := 2

    check pm forbidden mem x = 1
    check im allowed  mem x = 1
    check pm allowed  reg 0 ry = 0 && mem x = 2
    v}

    Identifiers declared under [locs] (and array cells [base[i]]) are
    shared locations; every other identifier is a register.  Statements
    are separated by newlines or [;]; [#] starts a comment.  Conditions
    are conjunctions of [reg THREAD NAME = INT] and [mem LOC = INT]
    atoms ([!=] for negation). *)

exception Error of string

val parse : string -> Litmus.t
(** @raise Error with a line-numbered message on malformed input. *)

val parse_file : string -> Litmus.t
