(** Final-state observations of an execution: per-thread register values
    and the final memory (the nonaborted write with the greatest
    timestamp per location).

    Registers written only inside aborted transactions do not appear:
    aborts roll register state back, as in a real STM. *)

type t = { regs : (string * int) list array; mem : (string * int) list }

val make : envs:(string * int) list list -> mem:(string * int) list -> t

val reg : t -> int -> string -> int
(** [reg o thread r] is the final value of register [r] on [thread]
    ([0] when unbound or the thread does not exist). *)

val mem : t -> string -> int
(** Final memory value ([0] when the location is unknown). *)

val compare_t : t -> t -> int
val equal : t -> t -> bool

val dedup : t list -> t list
(** Sort and deduplicate. *)

val diff : t list -> t list -> t list
(** [diff xs ys] is the outcomes of [xs] not admitted by [ys] — the
    witnesses a differential oracle reports when one semantic engine
    escapes another. *)

val subset : t list -> t list -> bool
(** [diff xs ys = []]. *)

val pp : t Fmt.t
