open Tmx_core
open Tmx_exec
open Tb

let im = Model.implementation

let fenceless_names =
  [ "privatization"; "publication"; "sb"; "ex3_1"; "ex3_2"; "aborted_pub"; "doomed" ]

let executions_of name =
  let p = (Option.get (Tmx_litmus.Catalog.find name)).program in
  (Enumerate.run im p).executions

let test_lemma_c1 () =
  List.iter
    (fun name ->
      List.iter
        (fun (e : Enumerate.execution) ->
          let ctx = Lift.make e.trace in
          let hb = Hb.compute im ctx in
          Alcotest.(check bool)
            (Fmt.str "%s: hb = init ∪ hbe ∪ po" name)
            true
            (Suborder.lemma_c1_holds ctx hb))
        (executions_of name))
    fenceless_names

let test_lemma_c2_positive () =
  List.iter
    (fun name ->
      List.iter
        (fun (e : Enumerate.execution) ->
          let ctx = Lift.make e.trace in
          Alcotest.(check bool)
            (Fmt.str "%s: Lemma C.2 accepts consistent executions" name)
            true (Suborder.lemma_c2_consistent ctx))
        (executions_of name))
    fenceless_names

let test_lemma_c2_negative () =
  (* the §2 coherence figure is inconsistent; Lemma C.2's characterization
     must reject it too *)
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        w 0 "x" 1 1; b 0; w 0 "y" 1 1; c 0;
        w 1 "x" 2 2; b 1; r 1 "y" 1 1; c 1;
        r 1 "x" 2 2; r 1 "x" 1 1;
      ]
  in
  Alcotest.(check bool) "axioms reject" false (Consistency.consistent im t);
  Alcotest.(check bool) "C.2 rejects" false (Suborder.lemma_c2_consistent (Lift.make t))

let test_suborders_shape () =
  (* po-T targets only writing transactions; poT- sources transactions *)
  let t =
    mk ~locs:[ "x"; "y" ]
      [ w 0 "y" 1 1; b 0; r 0 "x" 0 0; c 0; b 0; w 0 "x" 1 1; c 0; w 0 "y" 2 2 ]
  in
  let ctx = Lift.make t in
  let po_to_t = Suborder.po_to_t ctx and po_t_from = Suborder.po_t_from ctx in
  (* positions: init 0..3; Wy1@4; read-only txn 5..7 (Rx@6); writing txn
     8..10 (Wx@9); Wy2@11 *)
  Alcotest.(check bool) "plain -> read-only txn not in po-T" false
    (Rel.mem po_to_t 4 6);
  Alcotest.(check bool) "plain -> writing txn in po-T" true (Rel.mem po_to_t 4 9);
  Alcotest.(check bool) "txn read -> plain in poT-" true (Rel.mem po_t_from 6 11);
  Alcotest.(check bool) "plain -> plain not in poT-" false (Rel.mem po_t_from 4 11)

let suite =
  [
    Alcotest.test_case "Lemma C.1 hb decomposition" `Quick test_lemma_c1;
    Alcotest.test_case "Lemma C.2 accepts consistent" `Quick test_lemma_c2_positive;
    Alcotest.test_case "Lemma C.2 rejects inconsistent" `Quick test_lemma_c2_negative;
    Alcotest.test_case "suborder shapes" `Quick test_suborders_shape;
  ]
