(* The service layer: canonical serialization, the content-addressed
   verdict cache, and the serve/client daemon. *)

open Tmx_core
open Tmx_exec
open Tmx_lang
open Tmx_service

let config = Enumerate.default_config

let temp_dir tag =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "tmx-test-%s-%d" tag (Unix.getpid ()))
  in
  ignore (Cache.clear ~dir:d);
  d

(* -- canonical form ----------------------------------------------------------- *)

(* parse (to_string p) = normalize p, and the digest survives the trip *)
let check_canon_roundtrip what (p : Ast.program) =
  let text = Canon.to_string p in
  match Tmx_litmus.Parse.parse text with
  | exception Tmx_litmus.Parse.Error msg ->
      Alcotest.failf "%s: canonical text does not parse: %s@.%s" what msg text
  | parsed ->
      let q = parsed.Tmx_litmus.Litmus.program in
      if q <> Canon.normalize p then
        Alcotest.failf "%s: parse (to_string p) <> normalize p@.%s" what text;
      Alcotest.(check string)
        (Fmt.str "%s: digest stable across the trip" what)
        (Canon.digest p) (Canon.digest q)

let test_canon_catalog () =
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) -> check_canon_roundtrip l.name l.program)
    Tmx_litmus.Catalog.all

let test_canon_generated () =
  for i = 0 to 199 do
    let st = Tmx_fuzz.Gen.state_of_seed ~seed:42 ~index:i in
    let p = Tmx_fuzz.Gen.program ~name:"g" Tmx_fuzz.Gen.mixed st in
    check_canon_roundtrip (Fmt.str "generated %d" i) p
  done

let test_canon_negative_literal () =
  let open Ast in
  let p =
    program ~name:"neg" ~locs:[ "x" ]
      [ [ store (loc "x") (int (-3)) ]; [ load "r" (loc "x") ] ]
  in
  check_canon_roundtrip "negative literal" p;
  Alcotest.(check string)
    "normalization is idempotent"
    (Canon.to_string p)
    (Canon.to_string (Canon.normalize p))

(* renaming, loc reordering/duplication, and reformatting don't move the
   digest; changing the program does *)
let test_digest_invariance () =
  let l = Option.get (Tmx_litmus.Catalog.find "privatization") in
  let p = l.program in
  let d = Canon.digest p in
  Alcotest.(check string) "rename" d (Canon.digest { p with Ast.name = "other" });
  Alcotest.(check string) "loc order and dups" d
    (Canon.digest { p with Ast.locs = List.rev p.locs @ p.locs });
  let reparsed =
    (Tmx_litmus.Parse.parse (Tmx_litmus.Export.program_to_string p))
      .Tmx_litmus.Litmus.program
  in
  Alcotest.(check string) "reformatting via export" d (Canon.digest reparsed);
  let changed = { p with Ast.threads = List.tl p.Ast.threads } in
  if Canon.digest changed = d then
    Alcotest.fail "dropping a thread must change the digest"

(* -- json / protocol ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("a", Json.Arr [ Json.int 1; Json.Num 2.5; Json.Null; Json.Bool false ]);
        ("s", Json.str "quote \" back \\ newline \n tab \t");
        ("nested", Json.Obj [ ("k", Json.str "v") ]);
        ("neg", Json.int (-7));
      ]
  in
  (match Json.of_string (Json.to_string j) with
  | Ok j' -> if j' <> j then Alcotest.fail "json round trip changed the value"
  | Error e -> Alcotest.failf "json round trip does not parse: %s" e);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" bad
      | Error _ -> ())
    [ "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_protocol_roundtrip () =
  let sub =
    {
      Protocol.id = Some (Json.int 7);
      verb = "races";
      name = Some "sb";
      program = None;
      model = "im";
      deadline_ms = Some 250;
      subrequests = [];
    }
  in
  let r =
    {
      Protocol.id = Some (Json.str "batch-1");
      verb = "batch";
      name = None;
      program = None;
      model = "pm";
      deadline_ms = None;
      subrequests = [ sub; { sub with id = None; model = "pm" } ];
    }
  in
  match Protocol.of_line (Json.to_string (Protocol.to_json r)) with
  | Ok r' -> if r' <> r then Alcotest.fail "protocol round trip changed the request"
  | Error e -> Alcotest.failf "protocol round trip failed: %s" e

(* -- cache -------------------------------------------------------------------- *)

let program_of name = (Option.get (Tmx_litmus.Catalog.find name)).program

let check_verdict_equal what (a : Cache.verdict) (b : Cache.verdict) =
  let oa = Enumerate.outcomes a.result and ob = Enumerate.outcomes b.result in
  if
    not
      (List.length oa = List.length ob && List.for_all2 Outcome.equal oa ob)
  then Alcotest.failf "%s: outcome sets differ" what;
  Alcotest.(check int) (what ^ ": graphs") a.result.graphs b.result.graphs;
  Alcotest.(check bool) (what ^ ": capped") a.result.capped b.result.capped;
  Alcotest.(check bool)
    (what ^ ": truncated") a.result.truncated b.result.truncated;
  if a.races <> b.races then Alcotest.failf "%s: race sets differ" what;
  if a.mixed <> b.mixed then Alcotest.failf "%s: mixed flags differ" what;
  Alcotest.(check bool)
    (what ^ ": lint race_free") a.lint_race_free b.lint_race_free;
  Alcotest.(check int) (what ^ ": lint findings") a.lint_findings b.lint_findings;
  Alcotest.(check int) (what ^ ": lint mixed") a.lint_mixed b.lint_mixed

let test_cache_roundtrip () =
  let dir = temp_dir "roundtrip" in
  let c = Cache.create ~dir () in
  let p = program_of "privatization" in
  let v, h1 = Cache.memo c ~config Model.programmer p in
  Alcotest.(check bool) "first memo misses" true (h1 = `Miss);
  let v2, h2 = Cache.memo c ~config Model.programmer p in
  Alcotest.(check bool) "second memo hits" true (h2 = `Hit);
  check_verdict_equal "front hit" v v2;
  (* a fresh front over the same directory must reconstruct the verdict
     from disk, exactly *)
  let c' = Cache.create ~dir () in
  (match Cache.find c' ~config Model.programmer p with
  | None -> Alcotest.fail "fresh cache misses a stored entry"
  | Some v3 -> check_verdict_equal "disk reload" v v3);
  Alcotest.(check int) "one disk hit" 1 (Cache.stats c').hits;
  (* different model, different entry *)
  (match Cache.find c' ~config Model.implementation p with
  | Some _ -> Alcotest.fail "model must be part of the key"
  | None -> ());
  ignore (Cache.clear ~dir)

let test_cache_version_mismatch () =
  let dir = temp_dir "version" in
  let c1 = Cache.create ~version:"test-v1" ~dir () in
  let p = program_of "sb" in
  ignore (Cache.memo c1 ~config Model.programmer p);
  let c2 = Cache.create ~version:"test-v2" ~dir () in
  (match Cache.find c2 ~config Model.programmer p with
  | Some _ -> Alcotest.fail "an entry of another format version must miss"
  | None -> ());
  let ds = Cache.disk_stats ~version:"test-v2" ~dir () in
  Alcotest.(check int) "one stale entry" 1 ds.stale;
  Alcotest.(check int) "no current entries" 0 ds.current;
  Alcotest.(check int) "gc reclaims it" 1 (Cache.gc ~version:"test-v2" ~dir ());
  Alcotest.(check int) "disk empty after gc" 0 (Cache.disk_stats ~dir ()).entries;
  ignore (Cache.clear ~dir)

let test_cache_corruption () =
  let dir = temp_dir "corrupt" in
  let c = Cache.create ~dir () in
  let p = program_of "publication" in
  let v, _ = Cache.memo c ~config Model.programmer p in
  let key = Cache.key c ~config Model.programmer p in
  let path = Cache.entry_path c key in
  Alcotest.(check bool) "entry file exists" true (Sys.file_exists path);
  let corrupt garbage =
    let oc = open_out path in
    output_string oc garbage;
    close_out oc
  in
  List.iter
    (fun garbage ->
      corrupt garbage;
      let c' = Cache.create ~dir () in
      (match Cache.find c' ~config Model.programmer p with
      | Some _ -> Alcotest.failf "corrupt entry %S served as a hit" garbage
      | None -> ());
      Alcotest.(check int)
        (Fmt.str "corrupt entry %S counted" garbage)
        1 (Cache.stats c').load_failures;
      (* memo must recover: recompute, re-store, and the verdict matches *)
      let v', h = Cache.memo c' ~config Model.programmer p in
      Alcotest.(check bool) "recovery is a miss" true (h = `Miss);
      check_verdict_equal "recovered verdict" v v')
    [ "{ not json"; "[]"; "{\"format\":\"tmx-cache-1\"}"; "" ];
  ignore (Cache.clear ~dir)

let test_cache_lru_bound () =
  let dir = temp_dir "lru" in
  let c = Cache.create ~capacity:4 ~dir () in
  let programs =
    List.filteri (fun i _ -> i < 10) Tmx_litmus.Catalog.all
    |> List.map (fun (l : Tmx_litmus.Litmus.t) -> l.program)
  in
  List.iter (fun p -> ignore (Cache.memo c ~config Model.programmer p)) programs;
  Alcotest.(check bool)
    (Fmt.str "resident %d <= capacity 4" (Cache.resident c))
    true
    (Cache.resident c <= 4);
  Alcotest.(check int) "evictions" 6 (Cache.stats c).evictions;
  (* evicted entries are still on disk and hit from there *)
  List.iter
    (fun p ->
      match Cache.find c ~config Model.programmer p with
      | None -> Alcotest.fail "evicted entry lost from disk"
      | Some _ -> ())
    programs;
  Alcotest.(check bool) "still bounded" true (Cache.resident c <= 4);
  ignore (Cache.clear ~dir)

let test_cache_concurrent () =
  let dir = temp_dir "concurrent" in
  let c = Cache.create ~capacity:8 ~dir () in
  let programs =
    List.filteri (fun i _ -> i < 8) Tmx_litmus.Catalog.all
    |> List.map (fun (l : Tmx_litmus.Litmus.t) -> l.program)
    |> Array.of_list
  in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for round = 0 to 2 do
              Array.iteri
                (fun i p ->
                  ignore (d, round, i);
                  let v, _ = Cache.memo c ~config Model.programmer p in
                  ignore v)
                programs
            done))
  in
  List.iter Domain.join domains;
  (* every program is cached, and every cached verdict matches a direct
     computation *)
  Array.iter
    (fun p ->
      match Cache.find c ~config Model.programmer p with
      | None -> Alcotest.fail "entry missing after concurrent memo"
      | Some v ->
          check_verdict_equal "concurrent verdict"
            (Cache.compute ~config Model.programmer p)
            v)
    programs;
  let s = Cache.stats c in
  Alcotest.(check bool)
    (Fmt.str "misses %d bounded by writers x programs" s.misses)
    true
    (s.misses >= 8 && s.misses <= 4 * 8);
  ignore (Cache.clear ~dir)

(* the acceptance pin: catalog reports rendered via the cache — cold and
   from a fresh cache over a populated store — are byte-identical to the
   uncached ones *)
let test_cached_reports_identical () =
  let dir = temp_dir "identical" in
  let render enumerate (l : Tmx_litmus.Litmus.t) =
    Fmt.str "%a" Tmx_litmus.Litmus.pp_report
      (Tmx_litmus.Litmus.run ~config ~enumerate l)
  in
  let direct = fun ~config m p -> Enumerate.run ~config m p in
  let cold_cache = Cache.create ~dir () in
  let cold = fun ~config m p -> Cache.memo_run cold_cache ~config m p in
  let warm_cache = Cache.create ~dir () in
  let warm = fun ~config m p -> Cache.memo_run warm_cache ~config m p in
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) ->
      let a = render direct l and b = render cold l in
      Alcotest.(check string) (l.name ^ ": cold = direct") a b)
    Tmx_litmus.Catalog.all;
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) ->
      let a = render direct l and b = render warm l in
      Alcotest.(check string) (l.name ^ ": warm = direct") a b)
    Tmx_litmus.Catalog.all;
  Alcotest.(check int) "warm pass never misses" 0 (Cache.stats warm_cache).misses;
  Alcotest.(check bool)
    "warm pass only hits" true
    ((Cache.stats warm_cache).hits > 0);
  ignore (Cache.clear ~dir)

(* -- the serve daemon --------------------------------------------------------- *)

let socket_path () = Fmt.str "/tmp/tmx-test-%d.sock" (Unix.getpid ())

let req ?deadline_ms ?(model = "pm") ?name ?program ?(subrequests = []) verb =
  { Protocol.id = None; verb; name; program; model; deadline_ms; subrequests }

(* [socket] is any Client-parseable address: a path or tcp:HOST:PORT *)
let send socket r =
  match
    Result.bind (Client.addr_of_string socket) (fun addr ->
        Client.request ~wait_s:5. ~addr (Protocol.to_json r))
  with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "request %s failed: %s" r.Protocol.verb e

let field conv k resp = Option.bind (Json.mem k resp) conv

let test_server_end_to_end () =
  let dir = temp_dir "server" in
  let socket = socket_path () in
  let cfg =
    {
      (Server.default_config ~socket) with
      cache_dir = dir;
      cache_capacity = 1;  (* tiny front: force disk reloads and evictions *)
      workers = 2;
      jobs = 2;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (Cache.clear ~dir))
    (fun () ->
      (* ping *)
      let resp = send socket (req "ping") in
      Alcotest.(check bool) "ping ok" true (Protocol.response_ok resp);
      (* races: miss then hit *)
      let r1 = send socket (req ~name:"sb" "races") in
      Alcotest.(check bool) "races ok" true (Protocol.response_ok r1);
      Alcotest.(check (option bool))
        "first races uncached" (Some false)
        (field Json.to_bool "cached" r1);
      let r2 = send socket (req ~name:"sb" "races") in
      Alcotest.(check (option bool))
        "second races cached" (Some true)
        (field Json.to_bool "cached" r2);
      Alcotest.(check (option int))
        "racy executions stable"
        (field Json.to_int "racy" r1)
        (field Json.to_int "racy" r2);
      (* a litmus source in "program" works and shares the entry of its
         catalog twin (the digest ignores the name) *)
      let src =
        Tmx_litmus.Export.program_to_string (program_of "sb")
      in
      let r3 = send socket (req ~program:src "races") in
      Alcotest.(check (option bool))
        "program text hits the catalog entry" (Some true)
        (field Json.to_bool "cached" r3);
      (* unknown name and unknown verb are errors, not disconnects *)
      let bad = send socket (req ~name:"no-such-test" "outcomes") in
      Alcotest.(check bool) "unknown name rejected" false (Protocol.response_ok bad);
      let bad2 = send socket (req ~name:"sb" "frobnicate") in
      Alcotest.(check bool) "unknown verb rejected" false (Protocol.response_ok bad2);
      (* deadline_ms = 0: already expired at dispatch *)
      let d = send socket (req ~deadline_ms:0 ~name:"iriw_z" "outcomes") in
      Alcotest.(check bool) "expired deadline rejected" false (Protocol.response_ok d);
      Alcotest.(check (option string))
        "deadline error text" (Some "deadline exceeded")
        (field Json.to_str "error" d);
      (* disconnect mid-request: a partial line, then a full request the
         client never reads the answer of; both leave the server alive *)
      let abandon payload =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket);
        ignore (Unix.write_substring fd payload 0 (String.length payload));
        Unix.close fd
      in
      abandon "{\"verb\":\"ra";
      abandon "{\"verb\":\"races\",\"name\":\"publication\"}\n";
      let resp = send socket (req "ping") in
      Alcotest.(check bool)
        "server survives client disconnects" true
        (Protocol.response_ok resp);
      (* corrupt the stored sb entry on disk.  The abandoned publication
         request above evicts sb from the capacity-1 front only once a
         worker gets to it; evict synchronously with an unrelated request
         so the next sb query deterministically takes the corruption
         path — and still answers correctly *)
      let evict = send socket (req ~name:"lb" "races") in
      Alcotest.(check bool) "evictor ok" true (Protocol.response_ok evict);
      let key =
        Cache.key (Server.cache t) ~config:cfg.enum Model.programmer
          (program_of "sb")
      in
      let oc = open_out (Cache.entry_path (Server.cache t) key) in
      output_string oc "{ torn entry";
      close_out oc;
      let r4 = send socket (req ~name:"sb" "races") in
      Alcotest.(check bool)
        "server survives a corrupted entry" true
        (Protocol.response_ok r4);
      Alcotest.(check (option int))
        "recomputed verdict matches"
        (field Json.to_int "racy" r1)
        (field Json.to_int "racy" r4);
      (* batch, twice: the second is served from the cache *)
      let names = [ "privatization"; "publication"; "lb" ] in
      let batch =
        req "batch"
          ~subrequests:(List.map (fun n -> req ~name:n "check") names)
      in
      let b1 = send socket batch in
      Alcotest.(check (option int))
        "batch count" (Some 3) (field Json.to_int "count" b1);
      Alcotest.(check (option int))
        "batch all ok" (Some 3)
        (field Json.to_int "ok_count" b1);
      let b2 = send socket batch in
      Alcotest.(check (option int))
        "second batch fully cached" (Some 3)
        (field Json.to_int "cached" b2);
      (* stats *)
      let s = send socket (req "stats") in
      let cache_stats = Option.get (Json.mem "cache" s) in
      let hits = Option.get (field Json.to_int "hits" cache_stats) in
      let load_failures =
        Option.get (field Json.to_int "load_failures" cache_stats)
      in
      Alcotest.(check bool) (Fmt.str "hits %d > 0" hits) true (hits > 0);
      Alcotest.(check bool)
        (Fmt.str "load failure %d counted" load_failures)
        true (load_failures >= 1);
      let metrics = Option.get (Json.mem "metrics" s) in
      Alcotest.(check bool)
        "requests counted" true
        (Option.get (field Json.to_int "requests" metrics) >= 10);
      Alcotest.(check (option int))
        "deadline metric" (Some 1)
        (field Json.to_int "deadlines_exceeded" metrics));
  (* stop is idempotent and removes the socket *)
  Server.stop t;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

let test_server_shutdown_verb () =
  let dir = temp_dir "shutdown" in
  let socket = socket_path () ^ "2" in
  let cfg = { (Server.default_config ~socket) with cache_dir = dir } in
  let t = Server.start cfg in
  let resp = send socket (req "shutdown") in
  Alcotest.(check bool) "shutdown acknowledged" true (Protocol.response_ok resp);
  Server.wait t;
  Alcotest.(check bool) "stopping" true (Server.stopping t);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
  ignore (Cache.clear ~dir)

(* -- the monotonic clock ------------------------------------------------------ *)

(* The NTP-step regression pin: every deadline and latency in the service
   layer is computed on [Tmx_runtime.Clock], which reads
   CLOCK_MONOTONIC — a clock that cannot be stepped by NTP or a TZ
   change.  A revert to [Unix.gettimeofday] fails the origin check (wall
   time sits at ~1.7e9 s past the epoch; the monotonic origin is around
   boot), and the TZ churn below would make a localtime-derived clock
   jump. *)
let test_clock_monotonic () =
  let module Clock = Tmx_runtime.Clock in
  Alcotest.(check bool) "not wall time" true
    (Float.abs (Clock.now_s () -. Unix.gettimeofday ()) > 86400.);
  let saved_tz = Sys.getenv_opt "TZ" in
  Fun.protect
    ~finally:(fun () ->
      match saved_tz with Some tz -> Unix.putenv "TZ" tz | None -> ())
    (fun () ->
      let prev = ref (Clock.now_ns ()) in
      List.iter
        (fun tz ->
          Unix.putenv "TZ" tz;
          for _ = 1 to 1000 do
            let t = Clock.now_ns () in
            if t < !prev then Alcotest.fail "monotonic clock went backwards";
            prev := t
          done)
        [ "UTC"; "America/New_York"; "Asia/Tokyo"; "UTC-14" ];
      (* a 50ms deadline expires by elapsed time only, whatever the
         wall-clock context does in between *)
      let deadline = Clock.now_s () +. 0.05 in
      Unix.putenv "TZ" "Pacific/Kiritimati";
      Alcotest.(check bool) "not expired early" true (Clock.now_s () < deadline);
      Unix.sleepf 0.06;
      Alcotest.(check bool) "expired by elapsed time" true
        (Clock.now_s () >= deadline))

(* -- IO robustness ------------------------------------------------------------ *)

(* A repeating interval timer peppers the process with SIGALRM while a
   large batch response streams back: every read and write on both sides
   must resume after EINTR instead of truncating the response or
   dropping the connection. *)
let test_batch_survives_signals () =
  let dir = temp_dir "signals" in
  let socket = socket_path () ^ "3" in
  let cfg = { (Server.default_config ~socket) with cache_dir = dir } in
  let t = Server.start cfg in
  let old_alrm = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let stop_timer () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL { it_value = 0.; it_interval = 0. })
  in
  Fun.protect
    ~finally:(fun () ->
      stop_timer ();
      Sys.set_signal Sys.sigalrm old_alrm;
      Server.stop t;
      ignore (Cache.clear ~dir))
    (fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { it_value = 0.002; it_interval = 0.002 });
      let n = 400 in
      let batch =
        req "batch" ~subrequests:(List.init n (fun _ -> req "ping"))
      in
      let resp = send socket batch in
      Alcotest.(check bool) "batch ok under signal pressure" true
        (Protocol.response_ok resp);
      Alcotest.(check (option int))
        "every sub-response arrived" (Some n)
        (field Json.to_int "count" resp);
      Alcotest.(check (option int))
        "all ok" (Some n)
        (field Json.to_int "ok_count" resp))

(* Thousands of pipelined request lines pushed in one write: the
   server's line splitter must hand back one response per line (the old
   rebuild-the-buffer-per-line splitter made this quadratic; the test
   doubles as its performance cram) *)
let test_pipelined_lines () =
  let dir = temp_dir "pipeline" in
  let socket = socket_path () ^ "4" in
  let cfg = { (Server.default_config ~socket) with cache_dir = dir } in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (Cache.clear ~dir))
    (fun () ->
      let n = 2000 in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let line = Json.to_string (Protocol.to_json (req "ping")) ^ "\n" in
      let payload = String.concat "" (List.init n (fun _ -> line)) in
      let rec wr off =
        if off < String.length payload then
          match
            Unix.write_substring fd payload off (String.length payload - off)
          with
          | w -> wr (off + w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wr off
      in
      wr 0;
      let buf = Buffer.create (n * 32) in
      let chunk = Bytes.create 8192 in
      let count_lines () =
        let c = ref 0 in
        String.iter
          (fun ch -> if ch = '\n' then incr c)
          (Buffer.contents buf);
        !c
      in
      let t0 = Tmx_runtime.Clock.now_s () in
      while count_lines () < n && Tmx_runtime.Clock.now_s () -. t0 < 60. do
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | 0 -> Alcotest.fail "server closed the connection mid-pipeline"
        | k -> Buffer.add_subbytes buf chunk 0 k
      done;
      Unix.close fd;
      Alcotest.(check int) "one response line per request" n (count_lines ());
      String.split_on_char '\n' (Buffer.contents buf)
      |> List.filter (fun s -> s <> "")
      |> List.iter (fun s ->
             match Json.of_string s with
             | Ok j ->
                 if not (Protocol.response_ok j) then
                   Alcotest.failf "error response in pipeline: %s" s
             | Error e -> Alcotest.failf "bad response line: %s" e))

(* -- sharded cache isolation -------------------------------------------------- *)

(* Shards are shared-nothing: vandalizing every entry of one shard
   directory must leave the other shards serving from disk, and the
   damaged shard recovers by recomputation. *)
let test_cache_shard_isolation () =
  let dir = temp_dir "shardiso" in
  let c = Cache.create ~shards:4 ~capacity:64 ~dir () in
  let progs =
    List.filteri (fun i _ -> i < 8) Tmx_litmus.Catalog.all
    |> List.map (fun (l : Tmx_litmus.Litmus.t) -> l.program)
  in
  List.iter (fun p -> ignore (Cache.memo c ~config Model.programmer p)) progs;
  let key_of p = Cache.key c ~config Model.programmer p in
  let victim = List.hd progs in
  let victim_shard = Cache.shard_index c (key_of victim) in
  let survivor =
    match
      List.find_opt
        (fun p -> Cache.shard_index c (key_of p) <> victim_shard)
        progs
    with
    | Some p -> p
    | None -> Alcotest.fail "catalog keys all landed in one shard"
  in
  let victim_dir = Filename.dirname (Cache.entry_path c (key_of victim)) in
  Array.iter
    (fun f ->
      let oc = open_out (Filename.concat victim_dir f) in
      output_string oc "{ vandalized";
      close_out oc)
    (Sys.readdir victim_dir);
  (* a fresh store over the same tree (cold LRU front, so every find
     goes to disk) *)
  let c2 = Cache.create ~shards:4 ~capacity:64 ~dir () in
  Alcotest.(check bool)
    "other shard unharmed" true
    (Option.is_some (Cache.find c2 ~config Model.programmer survivor));
  Alcotest.(check bool)
    "victim entry unreadable" true
    (Option.is_none (Cache.find c2 ~config Model.programmer victim));
  Alcotest.(check bool)
    "damage counted as load failure" true
    ((Cache.stats c2).load_failures >= 1);
  let v, outcome = Cache.memo c2 ~config Model.programmer victim in
  Alcotest.(check bool) "victim recomputed" true (outcome = `Miss);
  check_verdict_equal "recovered verdict"
    (Cache.compute ~config Model.programmer victim)
    v;
  ignore (Cache.clear ~dir)

(* Truncated digests would alias into a single shard and shadow each
   other; the path constructors must reject them. *)
let test_cache_shard_prefix_guard () =
  let dir = temp_dir "shardguard" in
  let c = Cache.create ~shards:2 ~dir () in
  let rejects what k f =
    match f k with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s %S accepted" what k
  in
  rejects "shard_index of short digest" "a" (Cache.shard_index c);
  rejects "entry_path of short digest" "f" (Cache.entry_path c);
  rejects "shard_index of empty digest" "" (Cache.shard_index c);
  rejects "shard_index of non-hex digest" "zz0" (Cache.shard_index c);
  let k = Cache.key c ~config Model.programmer (program_of "sb") in
  let i = Cache.shard_index c k in
  Alcotest.(check bool) "real key lands in range" true (i >= 0 && i < 2);
  (* uppercase hex is a valid digest spelling: same shard as lowercase,
     not a guard trip ('A'..'F' go through hex_digit too) *)
  Alcotest.(check int) "uppercase digest, same shard" i
    (Cache.shard_index c (String.uppercase_ascii k));
  Alcotest.(check int) "FF agrees with ff" (Cache.shard_index c "ff")
    (Cache.shard_index c "FF");
  Alcotest.(check int) "0A agrees with 0a" (Cache.shard_index c "0a")
    (Cache.shard_index c "0A");
  ignore (Cache.clear ~dir)

(* -- client address parsing --------------------------------------------------- *)

let test_addr_of_string () =
  let ok what s expect =
    match Client.addr_of_string s with
    | Ok a ->
        if a <> expect then
          Alcotest.failf "%s: %S parsed to %s" what s (Client.addr_to_string a)
    | Error e -> Alcotest.failf "%s: %S rejected: %s" what s e
  in
  let err what s =
    match Client.addr_of_string s with
    | Error _ -> ()
    | Ok a ->
        Alcotest.failf "%s: %S accepted as %s" what s (Client.addr_to_string a)
  in
  ok "tcp host:port" "tcp:localhost:8080" (Client.Tcp ("localhost", 8080));
  ok "empty host defaults" "tcp::9" (Client.Tcp ("127.0.0.1", 9));
  ok "absolute socket path" "/tmp/tmx.sock" (Client.Unix_sock "/tmp/tmx.sock");
  ok "relative path with colon" "./run/a:b.sock"
    (Client.Unix_sock "./run/a:b.sock");
  ok "bare name is a path" "tmx.sock" (Client.Unix_sock "tmx.sock");
  err "missing port" "tcp:localhost";
  err "bare scheme" "tcp:";
  err "empty port" "tcp:localhost:";
  err "non-numeric port" "tcp:localhost:http";
  err "port out of range" "tcp:localhost:70000";
  err "negative port" "tcp:localhost:-1";
  err "unknown scheme" "udp:localhost:9";
  err "url scheme" "http://localhost:9"

(* -- TCP transport ------------------------------------------------------------ *)

let test_server_tcp () =
  let dir = temp_dir "tcp" in
  let cfg =
    {
      (Server.default_config ~socket:"unused") with
      socket = None;
      tcp = Some ("127.0.0.1", 0);  (* kernel picks the port *)
      cache_dir = dir;
      cache_shards = 2;
      workers = 2;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (Cache.clear ~dir))
    (fun () ->
      let addr =
        match Server.server_addresses t with
        | [ a ] -> a
        | l -> Alcotest.failf "expected one address, got %d" (List.length l)
      in
      Alcotest.(check bool)
        (Fmt.str "bound address %s is tcp with a real port" addr)
        true
        (String.length addr > String.length "tcp:127.0.0.1:"
        && String.starts_with ~prefix:"tcp:127.0.0.1:" addr
        && (match Client.addr_of_string addr with
           | Ok (Client.Tcp (_, p)) -> p > 0
           | _ -> false));
      let resp = send addr (req "ping") in
      Alcotest.(check bool) "tcp ping ok" true (Protocol.response_ok resp);
      let r1 = send addr (req ~name:"sb" "races") in
      Alcotest.(check bool) "tcp races ok" true (Protocol.response_ok r1);
      let r2 = send addr (req ~name:"sb" "races") in
      Alcotest.(check (option bool))
        "tcp second races cached" (Some true)
        (field Json.to_bool "cached" r2);
      let s = send addr (req "stats") in
      let cache_stats = Option.get (Json.mem "cache" s) in
      Alcotest.(check (option int))
        "stats reports the shard count" (Some 2)
        (field Json.to_int "shards" cache_stats))

(* -- admission control -------------------------------------------------------- *)

(* With the admission budget pinned to one in-flight expensive request,
   three domains hammering always-cold (freshly generated) programs must
   collide: some requests get the structured overloaded response — well
   formed, not a disconnect — and the server counts every shed. *)
let test_admission_shedding () =
  let dir = temp_dir "shed" in
  let socket = socket_path () ^ "5" in
  let cfg =
    {
      (Server.default_config ~socket) with
      cache_dir = dir;
      workers = 4;
      max_inflight = 1;
    }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (Cache.clear ~dir))
    (fun () ->
      let hammer d =
        let sheds = ref [] in
        for i = 0 to 19 do
          let st = Tmx_fuzz.Gen.state_of_seed ~seed:((d * 1000) + i) ~index:0 in
          let src =
            Tmx_litmus.Export.program_to_string
              (Tmx_fuzz.Gen.program ~name:"shed" Tmx_fuzz.Gen.mixed st)
          in
          let resp = send socket (req ~program:src "races") in
          if Protocol.response_overloaded resp then sheds := resp :: !sheds
          else if not (Protocol.response_ok resp) then
            Alcotest.failf "non-shed error under load: %s"
              (Json.to_string resp)
        done;
        !sheds
      in
      let domains = List.init 3 (fun d -> Domain.spawn (fun () -> hammer d)) in
      let sheds = List.concat_map Domain.join domains in
      Alcotest.(check bool)
        (Fmt.str "observed %d sheds" (List.length sheds))
        true
        (List.length sheds >= 1);
      List.iter
        (fun resp ->
          Alcotest.(check bool)
            "shed is not ok" false (Protocol.response_ok resp);
          Alcotest.(check (option string))
            "shed error text" (Some "overloaded")
            (field Json.to_str "error" resp);
          Alcotest.(check (option string))
            "shed echoes the verb" (Some "races")
            (field Json.to_str "verb" resp))
        sheds;
      (* exempt verbs keep answering and the counter is visible *)
      let s = send socket (req "stats") in
      Alcotest.(check bool) "stats ok under load" true (Protocol.response_ok s);
      let metrics = Option.get (Json.mem "metrics" s) in
      Alcotest.(check bool)
        "sheds counted in stats" true
        (Option.get (field Json.to_int "sheds" metrics) >= List.length sheds))

(* -- loadgen ------------------------------------------------------------------ *)

(* The stream is a pure function of (seed, index): concurrency must not
   change any request, and a different seed must. *)
let test_loadgen_determinism () =
  let open Loadgen in
  let stream cfg n =
    let targets = pool cfg in
    let cum = zipf_cumulative ~skew:cfg.skew (Array.length targets) in
    List.init n (fun i ->
        Json.to_string (Protocol.to_json (request cfg ~cum ~targets i)))
  in
  let cfg = { default_config with generated = 4 } in
  let a = stream cfg 64 in
  let b = stream { cfg with concurrency = 7; duration_s = 0.1 } 64 in
  Alcotest.(check (list string)) "stream independent of concurrency" a b;
  let c = stream { cfg with seed = cfg.seed + 1 } 64 in
  Alcotest.(check bool) "different seed, different stream" true (a <> c);
  (* the verb mix actually mixes *)
  let verbs =
    List.sort_uniq compare
      (List.filter_map
         (fun line ->
           Result.to_option (Json.of_string line)
           |> Fun.flip Option.bind (Json.mem "verb")
           |> Fun.flip Option.bind Json.to_str)
         a)
  in
  Alcotest.(check bool)
    (Fmt.str "several verbs drawn (%s)" (String.concat "," verbs))
    true
    (List.length verbs >= 3);
  (* open loop: the arrival schedule is deterministic, strictly
     increasing, roughly at the configured rate — and disjoint from the
     content stream, so turning it on changes no request *)
  let ol = { cfg with rate = 100.0 } in
  let t1 = arrivals ol ~n:256 and t2 = arrivals ol ~n:256 in
  Alcotest.(check (array (float 0.0))) "arrival schedule deterministic" t1 t2;
  Array.iteri
    (fun i t ->
      if i > 0 && t <= t1.(i - 1) then
        Alcotest.failf "arrivals not increasing at %d" i)
    t1;
  let mean_gap = t1.(255) /. 256.0 in
  Alcotest.(check bool)
    (Fmt.str "mean gap %.4fs near 1/rate" mean_gap)
    true
    (mean_gap > 0.005 && mean_gap < 0.02);
  Alcotest.(check (list string)) "rate leaves request contents alone" a
    (stream ol 64)

(* End-to-end: a short run against an in-process TCP server, then the
   1-vs-2-shard byte-identity oracle on two fresh servers. *)
let test_loadgen_oracle () =
  let with_tcp_server ~tag ~shards f =
    let dir = temp_dir tag in
    let cfg =
      {
        (Server.default_config ~socket:"unused") with
        socket = None;
        tcp = Some ("127.0.0.1", 0);
        cache_dir = dir;
        cache_shards = shards;
        workers = 2;
      }
    in
    let t = Server.start cfg in
    Fun.protect
      ~finally:(fun () ->
        Server.stop t;
        ignore (Cache.clear ~dir))
      (fun () ->
        match Server.server_addresses t with
        | [ a ] -> f (Result.get_ok (Client.addr_of_string a))
        | _ -> Alcotest.fail "expected one bound address")
  in
  let lg =
    { Loadgen.default_config with use_catalog = false; generated = 8 }
  in
  with_tcp_server ~tag:"lg-run" ~shards:2 (fun addr ->
      let r =
        Loadgen.run
          ~config:{ lg with concurrency = 2; requests = 40 }
          addr
      in
      Alcotest.(check int) "all requests sent" 40 r.Loadgen.requests_sent;
      Alcotest.(check int) "no transport errors" 0 r.Loadgen.errors;
      Alcotest.(check bool) "answers arrived" true (r.Loadgen.ok > 0);
      Alcotest.(check bool)
        (Fmt.str "repeat targets hit the cache (hit rate %.2f)"
           r.Loadgen.hit_rate)
        true (r.Loadgen.hits > 0));
  with_tcp_server ~tag:"lg-a" ~shards:1 (fun a ->
      with_tcp_server ~tag:"lg-b" ~shards:2 (fun b ->
          match Loadgen.oracle ~config:lg ~requests:32 a b with
          | Ok None -> ()
          | Ok (Some m) ->
              Alcotest.failf "shard divergence at %d:@.%s@.%s" m.Loadgen.index
                m.Loadgen.line_a m.Loadgen.line_b
          | Error e -> Alcotest.failf "oracle transport failure: %s" e))

let suite =
  [
    Alcotest.test_case "canon catalog round trip" `Quick test_canon_catalog;
    Alcotest.test_case "canon generated round trip" `Quick test_canon_generated;
    Alcotest.test_case "canon negative literals" `Quick test_canon_negative_literal;
    Alcotest.test_case "digest invariance" `Quick test_digest_invariance;
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "protocol round trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "cache store/find round trip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache version mismatch" `Quick test_cache_version_mismatch;
    Alcotest.test_case "cache corruption recovery" `Quick test_cache_corruption;
    Alcotest.test_case "cache LRU bound" `Quick test_cache_lru_bound;
    Alcotest.test_case "cache concurrent memo" `Quick test_cache_concurrent;
    Alcotest.test_case "cached reports byte-identical" `Slow
      test_cached_reports_identical;
    Alcotest.test_case "cache shard isolation" `Quick test_cache_shard_isolation;
    Alcotest.test_case "cache shard prefix guard" `Quick
      test_cache_shard_prefix_guard;
    Alcotest.test_case "client address parsing" `Quick test_addr_of_string;
    Alcotest.test_case "server end to end" `Quick test_server_end_to_end;
    Alcotest.test_case "server tcp transport" `Quick test_server_tcp;
    Alcotest.test_case "server shutdown verb" `Quick test_server_shutdown_verb;
    Alcotest.test_case "admission shedding" `Slow test_admission_shedding;
    Alcotest.test_case "loadgen determinism" `Quick test_loadgen_determinism;
    Alcotest.test_case "loadgen run and shard oracle" `Slow test_loadgen_oracle;
    Alcotest.test_case "monotonic clock vs wall/TZ" `Quick test_clock_monotonic;
    Alcotest.test_case "batch response survives signals" `Slow
      test_batch_survives_signals;
    Alcotest.test_case "pipelined request lines" `Slow test_pipelined_lines;
  ]
