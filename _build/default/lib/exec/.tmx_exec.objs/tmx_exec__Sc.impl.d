lib/exec/sc.ml: Action Ast List Option Outcome Proto Rat Tmx_core Tmx_lang Trace
