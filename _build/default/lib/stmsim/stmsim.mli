(** Operational STM simulator (§3 made executable).

    Eager (undo-log, in-place writes) and lazy (redo-log, commit-time
    write-back) versioning over a sequentially consistent host memory,
    with an exhaustively explored fine-grained scheduler.  Commit
    write-back and rollback are sequences of individually scheduled
    steps, so plain accesses interleave with them — exactly the
    mixed-mode windows §3 discusses.  The quiescence fence blocks until
    no other thread has an in-flight transaction (waiting only for
    transactions that already touched the fenced location is unsound:
    WF12 constrains the whole transaction span). *)

open Tmx_exec

type strategy = Eager | Lazy

type config = {
  strategy : strategy;
  fuel : int;  (** loop unrolling bound *)
  max_retries : int;  (** lazy validation-failure retries *)
  atomic_commit : bool;  (** publish lazy buffers in one indivisible step *)
  max_paths : int;
}

val default_config : config

type result = {
  outcomes : Outcome.t list;
  paths : int;  (** complete schedules explored *)
  truncated : bool;  (** fuel or retry budget exhausted on some path *)
  capped : bool;
}

val run : ?config:config -> Tmx_lang.Ast.program -> result

val anomalies :
  ?config:config -> ?sc_config:Sc.config -> Tmx_lang.Ast.program -> Outcome.t list
(** Outcomes the STM exhibits that the atomic reference semantics ({!Sc})
    does not. *)
