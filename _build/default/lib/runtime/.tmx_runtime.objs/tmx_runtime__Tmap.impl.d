lib/runtime/tmap.ml: Option Stm Tarray Tvar
