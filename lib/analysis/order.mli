(** The conservative static happens-before abstraction over static
    accesses.

    A pair is declared [Ordered] only when every pair of its dynamic
    instances is happens-before-ordered, or excluded from racing by the
    race definition itself, in every well-formed trace under every
    model: same thread (program order, which subsumes transaction
    boundaries), both transactional, both reads, an always-aborting
    transaction — or guard dominance, the one data-dependent exclusion
    whose premises force every dynamic race instance through the
    happens-before base (po ∪ cwr) of every model.

    The quiescence-fence rules (WF12/HBCQ/HBQB) and the HBww
    privatization ordering are one-sided or data-dependent, so they are
    reported as {!protection}s — severity hints that never suppress a
    finding. *)

type reason =
  | Same_thread
  | Both_transactional
  | Both_reads
  | Must_abort
  | Guard_dominated of string
      (** the guarded side only executes after a nonzero test of a
          register whose unique definition transactionally loads this
          flag; every static write of the flag is transactional and
          positioned so cwr + po order the pair in every trace (needs
          loop-free threads and program-global write facts, hence the
          [?ctx] argument of {!pair}) *)

val pp_reason : reason Fmt.t

type protection =
  | Fence_commit_side of string
      (** the plain access is dominated by a fence on the raced
          location: HBCQ orders transactions that commit before the
          fence ahead of it *)
  | Fence_begin_side of string
      (** the plain access is postdominated by such a fence: HBQB
          orders transactions that begin after the fence behind it *)
  | Guarded_publication of string
      (** privatization idiom: the transactional side reads this flag,
          which the plain side's thread publishes in an earlier atomic
          block; HBww orders the pair when the guard reads the
          pre-publication value *)
  | Published_flag of string
      (** publication idiom: the plain access precedes an atomic block
          writing this flag, which the transactional side reads; cwr
          orders the publisher before the reader when the value is
          observed *)
  | Consumed_flag of string
      (** dual handoff: the transactional side writes this flag, which
          the plain side's thread read in an earlier atomic block; cwr
          orders the writer before the reader when the value is
          observed *)

val pp_protection : protection Fmt.t

type verdict = Ordered of reason | Unordered of protection list

val protections : Access.t -> Access.t -> protection list
(** Protections for a pair known to clash on a location; only
    transactional-vs-plain pairs have any. *)

val guard_dominated : Access.context -> Access.t -> Access.t -> string option
(** The flag witnessing a guard-dominance exclusion for the pair, if
    one applies (see {!reason}).  Sound under every model: the flag's
    observed value serializes the guarded side behind the other through
    base-happens-before edges alone. *)

val pair : ?ctx:Access.context -> Access.t -> Access.t -> verdict
(** The static verdict for a clashing pair of accesses.  [ctx] (from
    {!Access.context}) enables the guard-dominance exclusion, which
    needs program-global facts; without it the rule is skipped. *)
