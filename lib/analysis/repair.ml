(* Counterexample-guided minimal race repair.

   Given a program the enumerator finds racy, search the space of edit
   subsets — per-site fence insertions, promotions of plain accesses
   into fresh atomic blocks, absorptions into adjacent ones
   ([Tmx_opt.Patch]) — for a *minimal* repair: fewest edits first, then
   fewest fences, that the reduced enumerator certifies race-free under
   the requested model and goal.

   The division of labour:

   - [Lint] findings seed the candidate pool.  Lint is sound (every
     dynamic race is covered by a finding), so the pool always contains
     a sufficient repair: promoting every plain access that appears in a
     finding removes every plain side of every potential race.
   - [Order]'s exclusion rules prune inside lint itself: accesses whose
     pairs are statically ordered (guard dominance included) generate no
     findings and hence no candidate edits.
   - The enumerator is consulted only on the frontier: each candidate
     subset that survives the counterexample filter is applied and
     model-checked ([Verdict.race_witness] under the configured
     reduction), memoized by the structural digest of the edited
     program.  Each discarded candidate is justified by the concrete
     racy execution the enumerator returned for it.

   Counterexample filter: a recorded witness names the two racing
   threads and the raced location; a candidate subset is only worth
   enumerating if, for every recorded witness, some edit in the subset
   touches a racing thread on a clashing location.  The filter is a
   heuristic (witnesses from one candidate need not transfer to
   another), so two guards keep it honest: if the filtered search
   exhausts every subset, the full candidate set is tried unfiltered;
   and the final minimization loop — greedily re-verifying each
   single-edit removal until none can be dropped — establishes
   1-minimality with the oracle alone, independent of anything the
   filter skipped.  The [repair-sound] fuzz oracle re-checks exactly
   this contract: the repair verifies race-free, and removing any single
   edit reintroduces a race. *)

open Tmx_lang
open Tmx_opt

type goal = Mixed | All

let goal_name = function Mixed -> "mixed" | All -> "all"
let goal_of_string = function
  | "mixed" -> Some Mixed
  | "all" -> Some All
  | _ -> None

type discard = { subset : Patch.edit list; witness : Tmx_exec.Verdict.race_witness }

type t = {
  original : Ast.program;
  repaired : Ast.program;
  edits : Patch.edit list;  (* [] iff the program was already clean *)
  certificate : string;
  candidates : int;  (* candidate subsets examined (incl. filtered) *)
  oracle_calls : int;  (* enumerator invocations (memoized by digest) *)
  discards : discard list;  (* most recent first *)
}

type cost = { n_edits : int; n_fences : int; n_promotes : int; n_absorbs : int }

let cost r =
  let count p = List.length (List.filter p r.edits) in
  {
    n_edits = List.length r.edits;
    n_fences = Patch.fence_count r.edits;
    n_promotes = count (function Patch.Promote _ -> true | _ -> false);
    n_absorbs = count (function Patch.Absorb _ -> true | _ -> false);
  }

(* The certificate binds what was verified: the repaired program's
   structural form (name-independent), the model, the enumeration
   configuration that served as oracle, and the goal.  Re-running
   [tmx repair --check] recomputes it; a mismatch means the program,
   model or oracle changed since the repair was minted. *)
let certificate_of ~config ~model ~goal program =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [
            "tmx-repair-certificate-v1";
            Canon.structural program;
            model.Tmx_core.Model.name;
            Tmx_exec.Enumerate.config_key config;
            goal_name goal;
          ]))

(* -- candidate pool ----------------------------------------------------------- *)

type candidate = { edit : Patch.edit; cthread : int; cloc : string }

let candidates_of_report ~promote (r : Lint.report) =
  let pool = ref [] in
  let add c =
    if not (List.exists (fun c' -> c'.edit = c.edit) !pool) then
      pool := c :: !pool
  in
  List.iter
    (fun (f : Lint.finding) ->
      let each (acc : Access.t) =
        if acc.mode = Access.Plain then begin
          if acc.after_atomic then
            add
              {
                edit =
                  Patch.Insert_fence { before = acc.path; fence_loc = f.loc };
                cthread = acc.thread;
                cloc = acc.loc;
              };
          if promote then begin
            add
              {
                edit = Patch.Promote { path = acc.path };
                cthread = acc.thread;
                cloc = acc.loc;
              };
            add
              {
                edit = Patch.Absorb { path = acc.path };
                cthread = acc.thread;
                cloc = acc.loc;
              }
          end
        end
      in
      each f.a;
      each f.b)
    r.Lint.findings;
  List.rev !pool

(* -- subset enumeration ------------------------------------------------------- *)

let rec k_subsets k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (k_subsets (k - 1) rest) @ k_subsets k rest

let by_fence_count subsets =
  List.stable_sort
    (fun a b ->
      compare
        (Patch.fence_count (List.map (fun c -> c.edit) a))
        (Patch.fence_count (List.map (fun c -> c.edit) b)))
    subsets

(* -- the search --------------------------------------------------------------- *)

let run ?config ?(goal = Mixed) ?max_edits ?(promote = true) model program =
  let config =
    Option.value config ~default:Tmx_exec.Enumerate.default_config
  in
  let memo = Hashtbl.create 64 in
  let oracle_calls = ref 0 in
  let oracle p =
    let key = Canon.digest p in
    match Hashtbl.find_opt memo key with
    | Some w -> w
    | None ->
        incr oracle_calls;
        let w =
          match goal with
          | Mixed ->
              Tmx_exec.Verdict.race_witness ~config ~mixed_only:true model p
          | All -> Tmx_exec.Verdict.race_witness ~config model p
        in
        Hashtbl.replace memo key w;
        w
  in
  let finish ~candidates ~discards edits repaired =
    Ok
      {
        original = program;
        repaired;
        edits;
        certificate = certificate_of ~config ~model ~goal repaired;
        candidates;
        oracle_calls = !oracle_calls;
        discards;
      }
  in
  match oracle program with
  | None -> finish ~candidates:0 ~discards:[] [] program
  | Some w0 ->
      let report = Lint.lint program in
      let pool =
        (* pre-filter: an edit that cannot even apply alone (absorb with
           no atomic neighbour, fence on an undeclared base) never helps *)
        List.filter
          (fun c -> Result.is_ok (Patch.apply [ c.edit ] program))
          (candidates_of_report ~promote report)
      in
      if pool = [] then
        Error
          (Fmt.str
             "%s: racy (%a) but no candidate edits%s — lint found %d findings"
             program.Ast.name Tmx_exec.Verdict.pp_race_witness w0
             (if promote then "" else " (promotion disabled)")
             (List.length report.Lint.findings))
      else
        let max_edits = Option.value max_edits ~default:(List.length pool) in
        let cexs = ref [ w0 ] in
        let discards = ref [] in
        let candidates = ref 0 in
        let addresses c (w : Tmx_exec.Verdict.race_witness) =
          let t1, t2 = w.threads in
          (c.cthread = t1 || c.cthread = t2)
          && match w.loc with
             | None -> true
             | Some l -> Footprint.name_clash c.cloc l
        in
        let viable subset =
          List.for_all (fun w -> List.exists (fun c -> addresses c w) subset)
            !cexs
        in
        (* try one candidate subset; [Some repaired] on success *)
        let try_subset subset =
          incr candidates;
          let edits = List.map (fun c -> c.edit) subset in
          match Patch.apply edits program with
          | Error _ -> None
          | Ok p' -> (
              match oracle p' with
              | None -> Some (edits, p')
              | Some w ->
                  cexs := w :: !cexs;
                  discards := { subset = edits; witness = w } :: !discards;
                  None)
        in
        (* greedy 1-minimization against the oracle: drop any edit whose
           removal keeps the program clean, to fixpoint *)
        let rec minimize edits =
          let n = List.length edits in
          let rec try_drop i =
            if i >= n then edits
            else
              let edits' = List.filteri (fun j _ -> j <> i) edits in
              match Patch.apply edits' program with
              | Error _ -> try_drop (i + 1)
              | Ok p' ->
                  if oracle p' = None then minimize edits' else try_drop (i + 1)
          in
          try_drop 0
        in
        let found =
          let rec sizes k =
            if k > max_edits then None
            else
              let subsets = by_fence_count (k_subsets k pool) in
              let rec scan = function
                | [] -> sizes (k + 1)
                | s :: rest -> (
                    if not (viable s) then scan rest
                    else match try_subset s with
                      | Some r -> Some r
                      | None -> scan rest)
              in
              scan subsets
          in
          match sizes 1 with
          | Some r -> Some r
          | None ->
              (* safety net: the counterexample filter is heuristic —
                 witnesses from one candidate program need not transfer
                 to another — so before giving up, try the whole pool
                 unfiltered *)
              try_subset pool
        in
        (match found with
        | None ->
            Error
              (Fmt.str
                 "%s: no race-free repair within %d edits (%d candidates, %d \
                  subsets tried, %d enumerator calls)"
                 program.Ast.name max_edits (List.length pool) !candidates
                 !oracle_calls)
        | Some (edits, _) ->
            let edits = minimize edits in
            (match Patch.apply edits program with
            | Error e -> Error ("internal: minimized repair fails to apply: " ^ e)
            | Ok repaired ->
                finish ~candidates:!candidates ~discards:!discards edits
                  repaired))

(* -- independent re-verification ---------------------------------------------- *)

(* The [repair-sound] contract, checked from scratch (no memo sharing
   with the search): the repaired program is race-free under the goal,
   and removing any single edit reintroduces a race.  Returns [Error]
   with the violated clause. *)
let check ?config ?(goal = Mixed) model (r : t) =
  let config =
    Option.value config ~default:Tmx_exec.Enumerate.default_config
  in
  let witness p =
    match goal with
    | Mixed -> Tmx_exec.Verdict.race_witness ~config ~mixed_only:true model p
    | All -> Tmx_exec.Verdict.race_witness ~config model p
  in
  let cert = certificate_of ~config ~model ~goal r.repaired in
  if cert <> r.certificate then
    Error
      (Fmt.str "certificate mismatch: recorded %s, recomputed %s" r.certificate
         cert)
  else
    match witness r.repaired with
    | Some w ->
        Error
          (Fmt.str "repaired program still races: %a"
             Tmx_exec.Verdict.pp_race_witness w)
    | None ->
        let rec drop_each i =
          if i >= List.length r.edits then Ok ()
          else
            let edits' = List.filteri (fun j _ -> j <> i) r.edits in
            match Patch.apply edits' r.original with
            | Error _ -> drop_each (i + 1) (* the edit is load-bearing *)
            | Ok p' -> (
                match witness p' with
                | Some _ -> drop_each (i + 1)
                | None ->
                    Error
                      (Fmt.str
                         "not minimal: dropping edit %d (%a) leaves the \
                          program race-free"
                         i Patch.pp_edit (List.nth r.edits i)))
        in
        drop_each 0

(* -- reporting ---------------------------------------------------------------- *)

let pp ppf r =
  let c = cost r in
  if r.edits = [] then
    Fmt.pf ppf "%s: already %s-race-free, no repair needed (certificate %s)"
      r.original.Ast.name "mixed" (String.sub r.certificate 0 12)
  else
    Fmt.pf ppf
      "%s: repaired with %d edit%s (%d fence%s, %d promote%s, %d absorb%s)@,%a@,certificate %s (%d subsets, %d enumerator calls)"
      r.original.Ast.name c.n_edits
      (if c.n_edits = 1 then "" else "s")
      c.n_fences
      (if c.n_fences = 1 then "" else "s")
      c.n_promotes
      (if c.n_promotes = 1 then "" else "s")
      c.n_absorbs
      (if c.n_absorbs = 1 then "" else "s")
      (Fmt.list ~sep:Fmt.cut (fun ppf e -> Fmt.pf ppf "  - %a" Patch.pp_edit e))
      r.edits (String.sub r.certificate 0 12) r.candidates r.oracle_calls

let json_escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* a failed synthesis still needs a well-formed JSON entry (error
   messages carry UTF-8, which OCaml's %S would mangle) *)
let error_to_json ~(program : Ast.program) msg =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"program\": ";
  json_escape buf program.Ast.name;
  Buffer.add_string buf ", \"error\": ";
  json_escape buf msg;
  Buffer.add_string buf "}";
  Buffer.contents buf

let to_json ~model ~goal r =
  let buf = Buffer.create 1024 in
  let c = cost r in
  Buffer.add_string buf "{\"program\": ";
  json_escape buf r.original.Ast.name;
  Buffer.add_string buf
    (Fmt.str
       ",\n \"model\": \"%s\", \"goal\": \"%s\",\n \"edits\": %d, \
        \"fences\": %d, \"promotes\": %d, \"absorbs\": %d,\n \"edit_list\": ["
       model.Tmx_core.Model.name (goal_name goal) c.n_edits c.n_fences
       c.n_promotes c.n_absorbs);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ", ";
      json_escape buf (Fmt.str "%a" Patch.pp_edit e))
    r.edits;
  Buffer.add_string buf "],\n \"certificate\": ";
  json_escape buf r.certificate;
  Buffer.add_string buf
    (Fmt.str ",\n \"candidates\": %d, \"oracle_calls\": %d, \"discards\": ["
       r.candidates r.oracle_calls);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "\n  {\"subset\": [";
      List.iteri
        (fun j e ->
          if j > 0 then Buffer.add_string buf ", ";
          json_escape buf (Fmt.str "%a" Patch.pp_edit e))
        d.subset;
      Buffer.add_string buf "], \"witness\": ";
      json_escape buf
        (Fmt.str "%a" Tmx_exec.Verdict.pp_race_witness d.witness);
      Buffer.add_string buf "}")
    (List.rev r.discards);
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf
