/* Monotonic clock for Clock.now_ns.

   CLOCK_MONOTONIC never steps backwards (NTP slews it, never jumps
   it), which is what deadline and latency arithmetic needs.  Returned
   as an unboxed OCaml int: 63 bits of nanoseconds since an arbitrary
   origin is ~146 years, so no boxing and no allocation — the external
   is declared [@@noalloc]. */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value tmx_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
