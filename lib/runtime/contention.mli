(** Pluggable contention management for the runtime STM.

    A policy decides how a conflicted transaction waits before retrying
    (and whether it eventually stops retrying optimistically at all):

    - {!Spin}: capped exponential backoff, deterministic and identical
      on every domain — the legacy behaviour, prone to retry convoys;
    - {!Jittered} (the default): capped exponential with the spin length
      drawn from a per-domain deterministic PRNG (no shared RNG, no
      wall-clock dependence), which breaks convoys;
    - {!Budget}[ n]: jittered for the first [n] retries, then the
      transaction escalates to a serialized slow path — it takes a
      global lock, stalls new attempts on other domains, and runs with
      the field to itself, so a starved transaction finishes instead of
      spinning forever. *)

type policy =
  | Spin
  | Jittered
  | Budget of int

val default_policy : policy
(** {!Jittered}. *)

val pp_policy : Format.formatter -> policy -> unit

val backoff : policy -> retry:int -> unit
(** Wait as the policy prescribes before retry number [retry]
    (0-based: the wait after the first conflict has [retry = 0]). *)

val escalates : policy -> retry:int -> bool
(** Should this retry run on the serialized slow path instead? *)

val serialized : (unit -> 'a) -> 'a
(** Run [f] with the serialization gate held: one escalated transaction
    at a time, all other domains' {e new} attempts stalled via
    {!stall_if_serialized} until [f] returns. *)

val stall_if_serialized : unit -> unit
(** Spin while some escalated transaction holds the gate.  Called by the
    STM at the top of every optimistic attempt. *)

(**/**)

val rand_bits : unit -> int
(** The per-domain PRNG, exposed for tests and benchmarks. *)

(**/**)
