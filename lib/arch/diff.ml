(* Differential validation: do the architecture backends' outcome sets
   stay inside the LTRF variants'?  See diff.mli for the definitions. *)

open Tmx_core
open Tmx_exec

type verdict = {
  arch : Arch.t;
  variant : Model.t;
  validated : bool;
  witnesses : Outcome.t list;
  fences : Aexec.fence_site list option;
  imprecise : bool;
}

type row = {
  arch : Arch.t;
  validated : Model.t list;
  strongest : Model.t list;
  gap_fences : Aexec.fence_site list option option;
  imprecise : bool;
}

type containment = {
  sub : Arch.t;
  sup : Arch.t;
  ok : bool;
  witnesses : Outcome.t list;
}

let variant_outcomes ~config model program =
  let r = Enumerate.run ~config model program in
  (Enumerate.outcomes r, r.Enumerate.truncated || r.Enumerate.capped)

(* -- minimal fence search ----------------------------------------------------- *)

(* all size-k subsets, lexicographic in the input order *)
let rec choose k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (choose (k - 1) rest) @ choose k rest

(* Exhaustive cardinality-ordered search over few sites (guaranteed
   minimum), 1-minimal greedy prune of the full set otherwise.  [closes]
   re-runs the backend, so every returned set is verified by
   construction. *)
let minimal_fences ~sites ~closes =
  let n = List.length sites in
  if n <= 5 then
    let rec by_size k =
      if k > n then None
      else
        match List.find_opt closes (choose k sites) with
        | Some s -> Some s
        | None -> by_size (k + 1)
    in
    by_size 1
  else if not (closes sites) then None
  else
    let prune kept site =
      let without = List.filter (fun s -> s <> site) kept in
      if closes without then without else kept
    in
    Some (List.fold_left prune sites sites)

let check ?(config = Enumerate.default_config) ?(search_fences = true) arch
    variant program =
  let a = Aexec.run ~config arch program in
  let vo, v_imprecise = variant_outcomes ~config variant program in
  let witnesses = Outcome.diff a.Aexec.outcomes vo in
  let validated = witnesses = [] in
  let imprecise = a.Aexec.truncated || a.Aexec.capped || v_imprecise in
  let fences =
    if validated then Some []
    else if (not search_fences) || Arch.ld_fence_name arch = None then None
    else
      let sites = Aexec.plain_load_sites ~config program in
      let closes fences =
        Outcome.subset (Aexec.run ~config ~fences arch program).Aexec.outcomes vo
      in
      minimal_fences ~sites ~closes
  in
  { arch; variant; validated; witnesses; fences; imprecise }

let maximal_validated validated =
  List.filter
    (fun m ->
      not
        (List.exists
           (fun m' ->
             m' != m
             && Model.stronger_eq m' m
             && not (Model.stronger_eq m m'))
           validated))
    validated

let rows ?(config = Enumerate.default_config) program =
  let variants =
    List.map (fun m -> (m, variant_outcomes ~config m program)) Model.all
  in
  List.map
    (fun arch ->
      let a = Aexec.run ~config arch program in
      let validated, imprecise =
        List.fold_left
          (fun (vs, imp) (m, (vo, vimp)) ->
            let vs =
              if Outcome.subset a.Aexec.outcomes vo then m :: vs else vs
            in
            (vs, imp || vimp))
          ([], a.Aexec.truncated || a.Aexec.capped)
          variants
      in
      let validated = List.rev validated in
      let gap_fences =
        if List.memq Model.strongest validated then None
        else if Arch.ld_fence_name arch = None then Some None
        else
          let so, _ = List.assq Model.strongest variants in
          let sites = Aexec.plain_load_sites ~config program in
          let closes fences =
            Outcome.subset
              (Aexec.run ~config ~fences arch program).Aexec.outcomes so
          in
          Some (minimal_fences ~sites ~closes)
      in
      {
        arch;
        validated;
        strongest = maximal_validated validated;
        gap_fences;
        imprecise;
      })
    Arch.all

let containments ?(config = Enumerate.default_config) program =
  let out arch = (Aexec.run ~config arch program).Aexec.outcomes in
  let tso = out Arch.X86tso in
  let armv8 = out Arch.Armv8 in
  let rc11 = out Arch.Rc11 in
  let pair sub sub_out sup sup_out =
    let witnesses = Outcome.diff sub_out sup_out in
    { sub; sup; ok = witnesses = []; witnesses }
  in
  [
    pair Arch.X86tso tso Arch.Armv8 armv8;
    pair Arch.Rc11 rc11 Arch.Armv8 armv8;
  ]

let pp_fences ppf = function
  | None -> Fmt.string ppf "no closing fence set"
  | Some [] -> Fmt.string ppf "no fences needed"
  | Some s ->
      Fmt.pf ppf "fences {%a}" Fmt.(list ~sep:(any ", ") Aexec.pp_fence_site) s

let pp_verdict ppf (v : verdict) =
  Fmt.pf ppf "%a %s %s%s: %a" Arch.pp v.arch
    (if v.validated then "validates" else "escapes")
    v.variant.Model.name
    (if v.imprecise then " (imprecise)" else "")
    pp_fences v.fences;
  if v.witnesses <> [] then
    Fmt.pf ppf "; witnesses: %a"
      Fmt.(list ~sep:(any " | ") Outcome.pp)
      v.witnesses

let pp_row ppf (r : row) =
  let names ms = String.concat "," (List.map (fun (m : Model.t) -> m.Model.name) ms) in
  Fmt.pf ppf "%-7s strongest=%s%s %a" (Arch.name r.arch)
    (match r.strongest with [] -> "-" | ms -> names ms)
    (if r.imprecise then " (imprecise)" else "")
    (fun ppf -> function
      | None -> Fmt.string ppf "gap=none"
      | Some f -> Fmt.pf ppf "gap: %a" pp_fences f)
    r.gap_fences
