open Tmx_core
open Tmx_lang
open Tmx_exec

let pm = Model.programmer

let run ?(model = pm) p = Enumerate.run model p

let test_single_write () =
  let p = Ast.(program ~locs:[ "x" ] [ [ store (loc "x") (int 1) ] ]) in
  let r = run p in
  Alcotest.(check int) "one execution" 1 (List.length r.executions);
  match Enumerate.outcomes r with
  | [ o ] -> Alcotest.(check int) "final x" 1 (Outcome.mem o "x")
  | _ -> Alcotest.fail "expected one outcome"

let test_two_writes_coherence () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ store (loc "x") (int 1) ]; [ store (loc "x") (int 2) ] ])
  in
  let r = run p in
  let finals =
    List.sort_uniq compare (List.map (fun o -> Outcome.mem o "x") (Enumerate.outcomes r))
  in
  Alcotest.(check (list int)) "both coherence orders" [ 1; 2 ] finals

let test_read_own_txn_write () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 1); load "r" (loc "x") ] ] ])
  in
  let r = run p in
  List.iter
    (fun (e : Enumerate.execution) ->
      Alcotest.(check int) "reads own write" 1 (Outcome.reg e.outcome 0 "r"))
    r.executions;
  Alcotest.(check bool) "some execution" true (r.executions <> [])

let test_aborted_write_invisible () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 1); abort ] ]; [ load "r" (loc "x") ] ])
  in
  let r = run p in
  List.iter
    (fun (e : Enumerate.execution) ->
      Alcotest.(check int) "reads 0" 0 (Outcome.reg e.outcome 1 "r");
      Alcotest.(check int) "final x 0" 0 (Outcome.mem e.outcome "x"))
    r.executions

let test_all_traces_well_formed () =
  (* the enumerator raises internally if a linearization is ill-formed;
     run a transaction-heavy program to exercise it and double-check *)
  let p =
    Ast.(
      program ~locs:[ "x"; "y" ]
        [
          [ atomic [ load "r" (loc "y"); store (loc "x") (int 1) ] ];
          [ atomic [ store (loc "y") (int 1) ]; store (loc "x") (int 2) ];
          [ atomic [ load "q" (loc "x"); abort ] ];
        ])
  in
  let r = run p in
  List.iter
    (fun (e : Enumerate.execution) ->
      Alcotest.(check bool) "well-formed" true (Wellformed.is_well_formed e.trace))
    r.executions;
  Alcotest.(check bool) "nonempty" true (r.executions <> [])

let test_all_traces_consistent () =
  let p = (Option.get (Tmx_litmus.Catalog.find "iriw_z")).program in
  let r = run p in
  List.iter
    (fun (e : Enumerate.execution) ->
      Alcotest.(check bool) "consistent" true (Consistency.consistent pm e.trace))
    r.executions

let test_fence_partitions () =
  (* with a fence, every execution orders the x-transaction entirely
     before or after it (WF12) *)
  let p = (Option.get (Tmx_litmus.Catalog.find "privatization_fence")).program in
  let r = Enumerate.run Model.implementation p in
  List.iter
    (fun (e : Enumerate.execution) ->
      Alcotest.(check bool) "WF12 holds" true (Wellformed.is_well_formed e.trace))
    r.executions;
  Alcotest.(check bool) "nonempty" true (r.executions <> [])

let test_infeasible_read_pruned () =
  (* reading a value nobody writes yields no executions on that branch *)
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ load "r" (loc "x"); when_ Infix.(reg "r" = int 5) [ store (loc "x") (int 9) ] ] ])
  in
  let r = run p in
  List.iter
    (fun (e : Enumerate.execution) ->
      Alcotest.(check bool) "r is 0" true (Outcome.reg e.outcome 0 "r" = 0))
    r.executions

let test_graph_count_reported () =
  let p = (Option.get (Tmx_litmus.Catalog.find "privatization")).program in
  let r = run p in
  Alcotest.(check bool) "graphs counted" true (r.graphs >= List.length r.executions)

let suite =
  [
    Alcotest.test_case "single write" `Quick test_single_write;
    Alcotest.test_case "coherence enumeration" `Quick test_two_writes_coherence;
    Alcotest.test_case "read own transactional write" `Quick test_read_own_txn_write;
    Alcotest.test_case "aborted writes invisible" `Quick test_aborted_write_invisible;
    Alcotest.test_case "all traces well-formed" `Quick test_all_traces_well_formed;
    Alcotest.test_case "all traces consistent" `Quick test_all_traces_consistent;
    Alcotest.test_case "fences partition executions" `Quick test_fence_partitions;
    Alcotest.test_case "infeasible reads pruned" `Quick test_infeasible_read_pruned;
    Alcotest.test_case "graph accounting" `Quick test_graph_count_reported;
  ]
