type addr = Unix_sock of string | Tcp of string * int

(* a scheme-looking prefix (letters/digits/+/-/., starting with a
   letter) that isn't "tcp" is almost surely a typo for one — treated
   as a socket path it would only surface later as a confusing ENOENT.
   Paths starting with '/' or '.' are never mistaken for schemes. *)
let scheme_like s =
  String.length s >= 2
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '+' | '-' | '.' -> true
         | _ -> false)
       s

let addr_of_string s =
  match String.index_opt s ':' with
  | Some _ when String.length s >= 4 && String.sub s 0 4 = "tcp:" -> (
      let rest = String.sub s 4 (String.length s - 4) in
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S has no port" s)
      | Some i -> (
          let host = String.sub rest 0 i in
          let port = String.sub rest (i + 1) (String.length rest - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 ->
              Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Error (Printf.sprintf "bad port in tcp address %S" s)))
  | Some i when scheme_like (String.sub s 0 i) ->
      Error
        (Printf.sprintf
           "unknown scheme in address %S (use tcp:HOST:PORT, or a socket \
            path starting with / or .)"
           s)
  | _ -> Ok (Unix_sock s)

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of = function
  | Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
      with
      | { Unix.ai_addr; _ } :: _ -> Ok (Unix.PF_INET, ai_addr)
      | [] -> Error (Printf.sprintf "cannot resolve %s:%d" host port)
      | exception _ -> Error (Printf.sprintf "cannot resolve %s:%d" host port))

type conn = { fd : Unix.file_descr; mutable pending : string }

(* set on the first connect, not at module init: only processes that
   actually open client connections should trade SIGPIPE death for
   EPIPE errors (a plain CLI run keeps the usual quiet exit when its
   stdout pipe closes) *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let connect ?(wait_s = 0.) addr =
  Lazy.force ignore_sigpipe;
  (* monotonic: a wall-clock step while we poll must not stretch or
     collapse the connect window *)
  let deadline = Tmx_runtime.Clock.now_s () +. wait_s in
  let rec go () =
    match sockaddr_of addr with
    | Error _ as e -> e
    | Ok (domain, sockaddr) -> (
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match
          Unix.connect fd sockaddr;
          (match addr with
          | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
          | Unix_sock _ -> ())
        with
        | () -> Ok { fd; pending = "" }
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with _ -> ());
            if Tmx_runtime.Clock.now_s () < deadline then (
              Unix.sleepf 0.02;
              go ())
            else
              Error
                (Printf.sprintf "cannot connect to %s: %s" (addr_to_string addr)
                   (Unix.error_message e)))
  in
  go ()

let close c = try Unix.close c.fd with _ -> ()

(* as on the server side: a signal mid-write resumes where it left off
   instead of truncating the request *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (try ignore (Unix.select [] [ fd ] [] 0.25)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off
  in
  go 0

let read_line c =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt c.pending '\n' with
    | Some i ->
        let line = String.sub c.pending 0 i in
        c.pending <-
          String.sub c.pending (i + 1) (String.length c.pending - i - 1);
        Ok line
    | None -> (
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e)
        | 0 -> Error "server closed the connection"
        | n ->
            c.pending <- c.pending ^ Bytes.sub_string chunk 0 n;
            go ())
  in
  go ()

let roundtrip_raw c req =
  match write_all c.fd (Json.to_string req ^ "\n") with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> read_line c

let roundtrip c req =
  match roundtrip_raw c req with
  | Error e -> Error e
  | Ok line -> (
      match Json.of_string line with
      | Ok j -> Ok j
      | Error e -> Error (Printf.sprintf "bad response: %s" e))

(* a connect can succeed against a server already on its way down: the
   kernel completes the handshake out of the dying listener's backlog,
   the process exits, and the first write or read then sees a dead
   peer.  Within a wait budget those are "not up yet", same as a
   refused connect — retry the whole connect+roundtrip. *)
let dead_peer_error e =
  e = "server closed the connection"
  || e = Unix.error_message Unix.EPIPE
  || e = Unix.error_message Unix.ECONNRESET

let request ?(wait_s = 0.) ~addr req =
  let deadline = Tmx_runtime.Clock.now_s () +. wait_s in
  let rec go () =
    let budget = Float.max 0. (deadline -. Tmx_runtime.Clock.now_s ()) in
    match connect ~wait_s:budget addr with
    | Error e -> Error e
    | Ok c -> (
        match
          Fun.protect ~finally:(fun () -> close c) (fun () -> roundtrip c req)
        with
        | Error e when dead_peer_error e && Tmx_runtime.Clock.now_s () < deadline
          ->
            Unix.sleepf 0.02;
            go ()
        | r -> r)
  in
  go ()
