(** Server-side observability: per-verb request counters and latency
    histograms, plus the live queue depth.

    The histogram is the same shape as [Tmx_runtime.Stm.stats]'s
    ([bounds] with an extra overflow bucket in [counts]; a value [v]
    lands in the first bucket with [v <= bounds.(i)]), so the two
    subsystems render and regress identically. *)

type histogram = { bounds : int array; counts : int array }
(** [counts] has [Array.length bounds + 1] entries; the last is the
    overflow bucket. *)

type t

val verbs : string list
(** The verbs tracked per-verb; anything else lands in ["other"]. *)

val create : unit -> t
val record : t -> verb:string -> ok:bool -> latency_ns:int -> unit
val deadline_exceeded : t -> unit
val incr_inflight : t -> unit
val decr_inflight : t -> unit
val inflight : t -> int

val shed : t -> unit
(** Count one request refused by admission control. *)

type verb_stats = { requests : int; errors : int; latency_ns : histogram }

type snapshot = {
  per_verb : (string * verb_stats) list;  (** in {!verbs} order *)
  total_requests : int;
  total_errors : int;
  deadlines_exceeded : int;
  sheds : int;  (** requests refused by admission control *)
  queue_depth : int;  (** requests in flight at snapshot time *)
}

val snapshot : t -> snapshot
val snapshot_to_json : snapshot -> Json.t
