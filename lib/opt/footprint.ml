(* Static read/write footprints of statements, used to decide when two
   program fragments are independent.  Computed-index cells ("z[r]") are
   approximated by their base name with a wildcard, conflicting with every
   cell of the same array. *)

open Tmx_lang

type t = { reads : string list; writes : string list; has_atomic : bool }

let empty = { reads = []; writes = []; has_atomic = false }

let merge a b =
  {
    reads = a.reads @ b.reads;
    writes = a.writes @ b.writes;
    has_atomic = a.has_atomic || b.has_atomic;
  }

let lval_name ({ base; index } : Ast.lval) =
  match index with None -> base | Some _ -> base ^ "[*]"

let rec of_stmt (s : Ast.stmt) =
  match s with
  | Load (_, lv) -> { empty with reads = [ lval_name lv ] }
  | Store (lv, _) -> { empty with writes = [ lval_name lv ] }
  | Assign _ | Skip | Abort -> empty
  | Fence x -> { empty with reads = [ x ]; writes = [ x ] }
  | Atomic body -> { (of_stmts body) with has_atomic = true }
  | If (_, t, e) -> merge (of_stmts t) (of_stmts e)
  | While (_, b) -> of_stmts b

and of_stmts body = List.fold_left (fun acc s -> merge acc (of_stmt s)) empty body

(* The array base of a cell name ("z" for "z[0]" or "z[*]"), if any. *)
let base_of n =
  match String.index_opt n '[' with
  | Some i -> Some (String.sub n 0 i)
  | None -> None

(* Two footprint names clash when equal, or when one is a wildcard cell of
   the other's array. *)
let name_clash a b =
  String.equal a b
  ||
  match (base_of a, base_of b) with
  | Some ba, Some bb -> String.equal ba bb && (String.equal a (ba ^ "[*]") || String.equal b (bb ^ "[*]"))
  | _ -> false

(* A wildcard footprint name refers to every declared cell of its base;
   any other name refers to itself. *)
let expand_name ~locs name =
  match base_of name with
  | Some base when String.equal name (base ^ "[*]") ->
      let prefix = base ^ "[" in
      let plen = String.length prefix in
      List.filter
        (fun l ->
          String.length l >= plen && String.equal (String.sub l 0 plen) prefix)
        locs
  | _ -> [ name ]

let sets_clash xs ys = List.exists (fun x -> List.exists (name_clash x) ys) xs

(* Conflict: same location, at least one write. *)
let conflicts a b =
  sets_clash a.writes b.writes || sets_clash a.writes b.reads
  || sets_clash a.reads b.writes

let is_read_only f = f.writes = []
let is_write_only f = f.reads = []
let is_memory_free f = f.reads = [] && f.writes = []
