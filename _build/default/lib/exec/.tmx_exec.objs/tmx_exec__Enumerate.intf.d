lib/exec/enumerate.mli: Outcome Tmx_core Tmx_lang
