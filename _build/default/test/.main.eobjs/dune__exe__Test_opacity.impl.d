test/test_opacity.ml: Alcotest Consistency Enumerate Fmt List Model Opacity QCheck QCheck_alcotest Tb Test_theorems Tmx_core Tmx_exec Tmx_litmus
