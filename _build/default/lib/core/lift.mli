(** Transaction-lifting of relations (§2 of the paper).

    [a lR b] iff [a R b], or [a' R b'] for some [a' tx~ a], [b' tx~ b]
    with [a !tx~ b].  The [x] variant restricts both endpoints to
    transactional actions; the [c] variant further to committed-or-live
    transactions. *)

val lifted : Trace.t -> Rel.t -> Rel.t
val lifted_x : Trace.t -> Rel.t -> Rel.t
val lifted_c : Trace.t -> Rel.t -> Rel.t

(** All base and lifted relations of a trace, computed once and shared by
    happens-before, consistency and race checking. *)
type ctx = {
  trace : Trace.t;
  index_ : Rel.t;
  init_ : Rel.t;
  po : Rel.t;
  ww : Rel.t;
  wr : Rel.t;
  rw : Rel.t;
  lww : Rel.t;
  lwr : Rel.t;
  lrw : Rel.t;
  xww : Rel.t;
  xwr : Rel.t;
  xrw : Rel.t;
  cww : Rel.t;
  cwr : Rel.t;
  crw : Rel.t;
}

val make : Trace.t -> ctx
