lib/core/trace.ml: Action Array Fmt Hashtbl List Option Rat Rel String
