(** Canonical program form: the serialization the verdict cache hashes.

    Two programs that are structurally equal — same threads, same
    statements, same declared locations up to order and duplication —
    must produce byte-identical canonical text, so that reformatting a
    litmus file (whitespace, comments, loc order) never causes a cache
    miss.  The canonical text is itself valid litmus syntax, and
    [parse (to_string p) = normalize p] (property-tested).

    The digest deliberately excludes the program {e name}: a renamed
    copy of a program asks the same semantic question and should share
    a cache entry. *)

val normalize : Ast.program -> Ast.program
(** Sort and dedupe the location list, and rewrite negative integer
    literals [Int n] (n < 0) to [Sub (Int 0, Int (-n))] — the form the
    parser produces for unary minus — so the printed text re-parses to
    the normalized AST exactly.  Idempotent. *)

val to_string : Ast.program -> string
(** Canonical litmus text of [normalize p], including the [name] line.
    Fixed two-space indentation, one statement per line, no comments. *)

val structural : Ast.program -> string
(** [to_string] without the [name] line: the hashed representation. *)

val digest : Ast.program -> string
(** Hex MD5 of [structural p].  Equal for structurally equal programs
    regardless of source formatting, loc order, or name. *)
