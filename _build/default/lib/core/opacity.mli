(** A direct opacity check: all transactions (committed, aborted, live)
    embed into one serial order consistent with their reads.

    The paper argues SC-LTRF guarantees opacity; the test suite verifies
    [check] on every consistent execution the enumerator produces.  The
    value-replay part covers the locations accessed only transactionally
    in the trace (mixed-mode locations admit plain interference by
    design). *)

val transactional_only_locs : Trace.t -> string list

val serialization : Model.t -> Trace.t -> int list option
(** A topological order of the transaction classes under lifted
    causality, or [None] when cyclic. *)

val check : ?model:Model.t -> Trace.t -> bool
