(* Model explorer: run litmus programs under every model configuration and
   print the allowed/forbidden matrix for their designated outcome —
   regenerating the design-space discussion of §2.3/§3.

   Run with:  dune exec examples/model_explorer.exe *)

open Tmx_core
open Tmx_exec

type probe = { name : string; program : Tmx_lang.Ast.program; cond : Outcome.t -> bool; what : string }

let catalog name = (Option.get (Tmx_litmus.Catalog.find name)).Tmx_litmus.Litmus.program

let probes =
  [
    {
      name = "privatization";
      program = catalog "privatization";
      cond = (fun o -> Outcome.mem o "x" = 1);
      what = "x=1";
    };
    {
      name = "publication";
      program = catalog "publication";
      cond = (fun o -> Outcome.mem o "z" = 0);
      what = "z=0";
    };
    {
      name = "ex2_2";
      program = catalog "ex2_2";
      cond = (fun o -> Outcome.mem o "x" = 2);
      what = "x=2";
    };
    {
      name = "ex3_1 (pub-by-antidep)";
      program = catalog "ex3_1";
      cond = (fun o -> Outcome.reg o 0 "r" = 0 && Outcome.reg o 1 "q" = 0);
      what = "r=q=0";
    };
    {
      name = "ex3_2 (global lock)";
      program = catalog "ex3_2";
      cond = (fun o -> Outcome.reg o 0 "r" = 0 && Outcome.reg o 1 "q" = 0);
      what = "r=q=0";
    };
    {
      name = "sb";
      program = catalog "sb";
      cond = (fun o -> Outcome.reg o 0 "r" = 0 && Outcome.reg o 1 "q" = 0);
      what = "r=q=0";
    };
    {
      name = "lb";
      program = catalog "lb";
      cond = (fun o -> Outcome.reg o 0 "r" = 1 && Outcome.reg o 1 "q" = 1);
      what = "r=q=1";
    };
    {
      name = "ex3_5 (torn reads)";
      program = catalog "ex3_5";
      cond = (fun o -> Outcome.reg o 0 "r1" <> Outcome.reg o 0 "r2");
      what = "r1<>r2";
    };
  ]

let () =
  Fmt.pr "%-24s %-8s" "program" "outcome";
  List.iter (fun (m : Model.t) -> Fmt.pr " %-6s" m.name) Model.all;
  Fmt.pr "@.";
  List.iter
    (fun p ->
      Fmt.pr "%-24s %-8s" p.name p.what;
      List.iter
        (fun model ->
          let verdict =
            if Enumerate.allowed (Enumerate.run model p.program) p.cond then "yes"
            else "no"
          in
          Fmt.pr " %-6s" verdict)
        Model.all;
      Fmt.pr "@.")
    probes;
  Fmt.pr
    "@.('yes' = the outcome is allowed under that model; pm = programmer, im \
     = implementation, strong = x86-like, v-* = the Example 2.3 variants)@."
