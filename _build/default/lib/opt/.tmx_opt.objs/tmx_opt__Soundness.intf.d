lib/opt/soundness.mli: Enumerate Fmt Outcome Tmx_core Tmx_exec Tmx_lang Transform
