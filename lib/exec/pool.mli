(** A small work-stealing domain pool (OCaml 5 domains).

    [run_tasks ~jobs ~tasks f] evaluates [f i] for every
    [i ∈ [0, tasks)] on up to [jobs] domains (the caller's included)
    and returns the results indexed by task.  Task claiming is a shared
    fetch-and-add cursor, so domains steal whatever task is next the
    moment they go idle; result slots are per-task, so the output array
    is independent of domain scheduling.

    [jobs] is clamped to at least 1; with [jobs = 1] (or a single task)
    everything runs in the calling domain and no domain is spawned.
    Spawned domains are additionally capped at [available_cores () - 1]:
    oversubscribing a small machine only adds scheduler and minor-heap
    contention, and the calling domain drains the queue regardless, so
    results are unchanged.  A negative [tasks] raises
    [Invalid_argument].

    If a task raises, the pool drains (no further tasks start) and the
    first exception is re-raised in the caller with the raising task's
    backtrace — through the same capture-and-reraise path whatever
    [jobs] was, so error behaviour does not depend on parallelism. *)

val run_tasks : jobs:int -> tasks:int -> (int -> 'a) -> 'a array

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()], exposed for [--jobs 0]-style
    "use every core" defaults. *)
