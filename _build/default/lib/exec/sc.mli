(** The sequential reference semantics: exhaustive interleaving with
    atomic blocks executed atomically, reads seeing the newest nonaborted
    write, writes taking fresh maximal timestamps.

    Every produced execution is transactionally Loc-sequential (§4), so
    this module's outcome set is what the paper calls "reasoning
    sequentially"; SC-LTRF says the full model adds nothing for programs
    whose sequential executions are race-free. *)

type config = { fuel : int }

val default_config : config

type execution = { trace : Tmx_core.Trace.t; outcome : Outcome.t }
type result = { executions : execution list; truncated : bool }

val run : ?config:config -> Tmx_lang.Ast.program -> result
val outcomes : result -> Outcome.t list
