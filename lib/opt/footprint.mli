(** Static read/write footprints of statements, used to decide when two
    program fragments are independent.  Computed-index cells ("z[r]") are
    approximated by a wildcard that conflicts with every cell of the same
    array. *)

type t = { reads : string list; writes : string list; has_atomic : bool }

val empty : t
val merge : t -> t -> t

val lval_name : Tmx_lang.Ast.lval -> string
(** The footprint name of an lvalue: the location itself, or
    ["base[*]"] for a computed cell. *)

val of_stmt : Tmx_lang.Ast.stmt -> t
val of_stmts : Tmx_lang.Ast.stmt list -> t

val base_of : string -> string option
(** The array base of a cell name ([Some "z"] for ["z[0]"] or ["z[*]"]),
    [None] for plain names. *)

val name_clash : string -> string -> bool
(** Equal names, or one is the wildcard cell of the other's array. *)

val expand_name : locs:string list -> string -> string list
(** The declared locations a footprint name may denote: every declared
    cell of the base for a wildcard ["z[*]"], the name itself otherwise. *)

val conflicts : t -> t -> bool
(** Same location, at least one write (conservatively, via wildcards). *)

val is_read_only : t -> bool
val is_write_only : t -> bool
val is_memory_free : t -> bool
