tmx loadgen replays a deterministic query stream (a pure function of
the seed) against a running daemon and reports latency percentiles,
hit rate and shed rate.  A bounded --requests run keeps the test fast.

  $ SOCK=/tmp/tmx-loadgen-$$.sock
  $ DIR=/tmp/tmx-loadgen-$$.cache
  $ ../bin/tmx.exe serve --socket "$SOCK" --cache-dir "$DIR" --workers 2 > serve.log 2>&1 &
  $ ../bin/tmx.exe client --socket "$SOCK" --wait 10 ping
  pong
  $ ../bin/tmx.exe loadgen --socket "$SOCK" --requests 40 --concurrency 2 --no-catalog --generated 6 --out report.json | sed 's/[0-9][0-9.]*/N/g'
  N requests in Ns (N rps, concurrency N, skew N, seed N)
  latency: pN Nms  pN Nms  pN Nms
  hit rate N   shed rate N   N errors

The --out witness follows the BENCH_loadgen.json schema that
tmx bench-compare understands:

  $ tr ',' '\n' < report.json | grep -c '"experiment":"serve_loadgen"'
  1
  $ ../bin/tmx.exe bench-compare report.json report.json | tail -1
  4/4 metrics within the 25%-regression threshold

The byte-identity oracle replays the same stream sequentially against
two fresh daemons and asserts identical response lines — here the
daemon is compared against a second, sharded one:

  $ SOCK2=/tmp/tmx-loadgen2-$$.sock
  $ DIR2=/tmp/tmx-loadgen2-$$.cache
  $ ../bin/tmx.exe serve --socket "$SOCK2" --cache-dir "$DIR2" --shards 2 --workers 2 > serve2.log 2>&1 &
  $ ../bin/tmx.exe client --socket "$SOCK2" --wait 10 ping
  pong

The first daemon's cache is warm from the measured run while the
second is cold, so the oracle uses fresh caches: restart the first.

  $ ../bin/tmx.exe client --socket "$SOCK" shutdown
  shutdown: ok
  $ rm -rf "$DIR"
  $ ../bin/tmx.exe serve --socket "$SOCK" --cache-dir "$DIR" --workers 2 > serve3.log 2>&1 &
  $ ../bin/tmx.exe client --socket "$SOCK" --wait 10 ping
  pong
  $ ../bin/tmx.exe loadgen --socket "$SOCK" --oracle "$SOCK2" --requests 24 --no-catalog --generated 6
  oracle: 24 responses byte-identical

  $ ../bin/tmx.exe client --socket "$SOCK" shutdown
  shutdown: ok
  $ ../bin/tmx.exe client --socket "$SOCK2" shutdown
  shutdown: ok
  $ wait
  $ rm -rf "$DIR" "$DIR2"
