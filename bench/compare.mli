(** Benchmark-regression guard behind [tmx bench-compare].

    Reads two benchmark witnesses of the same schema
    ([BENCH_stm.json], [BENCH_parallel.json], [BENCH_reduction.json],
    [BENCH_serve.json] or [BENCH_loadgen.json], auto-detected via their
    ["experiment"] field), normalizes every measurement to a throughput
    (higher is better), and reports the pairs where the new value fell
    more than {!default_threshold} below the old one. *)

val default_threshold : float
(** 0.25 — the one place the 25% regression threshold is defined. *)

type metric = { key : string; old_value : float; new_value : float }

type verdict = {
  threshold : float;
  metrics : metric list;
  regressions : metric list;
  missing : string list;
}

val compare_files :
  ?threshold:float ->
  ?gate_keys:string list ->
  string ->
  string ->
  (verdict, string) result
(** [compare_files old new] — [Error] on unreadable or unrecognized
    files.  A nonempty [gate_keys] restricts the comparison to keys
    containing one of the given substrings, so CI can gate on a
    witness's long-established keys while the rest stay warn-only. *)

val passed : verdict -> bool
val pp_verdict : verdict Fmt.t
