test/test_machine.ml: Alcotest Enumerate List Model Option Outcome QCheck QCheck_alcotest Test_theorems Tmx_core Tmx_exec Tmx_lang Tmx_litmus Tmx_machine
