(* The architecture backends (lib/arch): per-arch axioms on the key
   catalog shapes, the lattice containments, and the machine-checked §6
   sweep — every catalog program has x86-TSO validating the strongest
   variant with zero fences and every ARMv8 escape closed by the
   reported anti-load-buffering fence set. *)

open Tmx_exec
open Tmx_arch

let prog name =
  match Tmx_litmus.Catalog.find name with
  | Some l -> l.Tmx_litmus.Litmus.program
  | None -> Alcotest.failf "no catalog entry %s" name

let outcomes ?fences arch p = (Aexec.run ?fences arch p).Aexec.outcomes

let admits outs pred = List.exists pred outs
let forbids outs pred = not (admits outs pred)

(* -- per-arch verdicts on the canonical shapes ------------------------------- *)

let lb_outcome o = Outcome.reg o 0 "r" = 1 && Outcome.reg o 1 "q" = 1
let sb_outcome o = Outcome.reg o 0 "r" = 0 && Outcome.reg o 1 "q" = 0

let test_lb_armv8_allows () =
  (* no dependency ordering: both loads may be satisfied late *)
  Alcotest.(check bool)
    "armv8 admits r=1,q=1" true
    (admits (outcomes Arch.Armv8 (prog "lb")) lb_outcome)

let test_lb_tso_rc11_forbid () =
  Alcotest.(check bool)
    "x86tso forbids r=1,q=1" true
    (forbids (outcomes Arch.X86tso (prog "lb")) lb_outcome);
  Alcotest.(check bool)
    "rc11 forbids r=1,q=1 (no-thin-air)" true
    (forbids (outcomes Arch.Rc11 (prog "lb")) lb_outcome)

let test_lb_fence_closure () =
  (* one DMB LD leaves the cycle open; the pair closes it *)
  let p = prog "lb" in
  let one = [ { Aexec.thread = 0; loc = "x" } ] in
  let both = [ { Aexec.thread = 0; loc = "x" }; { Aexec.thread = 1; loc = "y" } ] in
  Alcotest.(check bool)
    "one fence does not close LB" true
    (admits (outcomes ~fences:one Arch.Armv8 p) lb_outcome);
  Alcotest.(check bool)
    "both fences close LB" true
    (forbids (outcomes ~fences:both Arch.Armv8 p) lb_outcome)

let test_lb_minimal_fences () =
  let v = Diff.check Arch.Armv8 Tmx_core.Model.strongest (prog "lb") in
  Alcotest.(check bool) "armv8 escapes strongest on lb" false v.Diff.validated;
  match v.Diff.fences with
  | Some s ->
      Alcotest.(check int) "both sites needed" 2 (List.length s)
  | None -> Alcotest.fail "expected a closing fence set"

let test_sb_tso_allows () =
  (* store buffering: W->R reorders on TSO, and the strongest variant
     also allows it — the canonical both-sides-agree weak outcome *)
  Alcotest.(check bool)
    "x86tso admits r=0,q=0" true
    (admits (outcomes Arch.X86tso (prog "sb")) sb_outcome)

let test_privatization_forbidden_everywhere () =
  let p = prog "privatization" in
  List.iter
    (fun arch ->
      Alcotest.(check bool)
        (Arch.name arch ^ " forbids final x=1")
        true
        (forbids (outcomes arch p) (fun o -> Outcome.mem o "x" = 1)))
    Arch.all

let test_aborted_writes_invisible () =
  let p =
    Tmx_lang.Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 1); abort ] ]; [ load "r" (loc "x") ] ])
  in
  List.iter
    (fun arch ->
      List.iter
        (fun o ->
          Alcotest.(check int)
            (Arch.name arch ^ " aborted store never read")
            0
            (Outcome.reg o 1 "r");
          Alcotest.(check int)
            (Arch.name arch ^ " aborted store never in memory")
            0 (Outcome.mem o "x"))
        (outcomes arch p))
    Arch.all

let test_containments_lb_iriw () =
  List.iter
    (fun name ->
      List.iter
        (fun (c : Diff.containment) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s within %s" name (Arch.name c.Diff.sub)
               (Arch.name c.Diff.sup))
            true c.Diff.ok)
        (Diff.containments (prog name)))
    [ "lb"; "sb"; "iriw_z"; "privatization" ]

let test_plain_load_sites () =
  let sites = Aexec.plain_load_sites (prog "lb") in
  Alcotest.(check (list (pair int string)))
    "lb sites"
    [ (0, "x"); (1, "y") ]
    (List.map (fun s -> (s.Aexec.thread, s.Aexec.loc)) sites)

(* -- the §6 sweep: catalog × {variant} × {arch} ------------------------------ *)

let check_section6 name program =
  let rows = Diff.rows program in
  List.iter
    (fun (r : Diff.row) ->
      Alcotest.(check bool) (name ^ ": precise") false r.Diff.imprecise;
      match r.Diff.arch with
      | Arch.X86tso | Arch.Rc11 ->
          (* §6: TSO (and the C++-TM mapping) validate even the
             strongest variant with no extra fences *)
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s validates strongest with zero fences" name
               (Arch.name r.Diff.arch))
            true (r.Diff.gap_fences = None)
      | Arch.Armv8 -> (
          match r.Diff.gap_fences with
          | None | Some (Some _) -> ()
          | Some None ->
              Alcotest.failf "%s: armv8 gap not closable by DMB LD" name))
    rows;
  List.iter
    (fun (c : Diff.containment) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: outcomes(%s) within outcomes(%s)" name
           (Arch.name c.Diff.sub) (Arch.name c.Diff.sup))
        true c.Diff.ok)
    (Diff.containments program)

let test_catalog_section6 () =
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) ->
      check_section6 l.Tmx_litmus.Litmus.name l.Tmx_litmus.Litmus.program)
    Tmx_litmus.Catalog.all

let test_random_section6 () =
  (* a small in-tree slice of the arch-diff fuzz oracle's claim; the
     nightly oracle runs the full 500-program sweep *)
  for i = 0 to 19 do
    let st = Tmx_fuzz.Gen.state_of_seed ~seed:7 ~index:i in
    let p = Tmx_fuzz.Gen.program Tmx_fuzz.Gen.mixed st in
    check_section6 (Printf.sprintf "random-%d" i) p
  done

let suite =
  [
    Alcotest.test_case "lb: armv8 allows" `Quick test_lb_armv8_allows;
    Alcotest.test_case "lb: tso and rc11 forbid" `Quick test_lb_tso_rc11_forbid;
    Alcotest.test_case "lb: fence closure" `Quick test_lb_fence_closure;
    Alcotest.test_case "lb: minimal fence set" `Quick test_lb_minimal_fences;
    Alcotest.test_case "sb: tso allows" `Quick test_sb_tso_allows;
    Alcotest.test_case "privatization forbidden everywhere" `Quick
      test_privatization_forbidden_everywhere;
    Alcotest.test_case "aborted writes invisible" `Quick
      test_aborted_writes_invisible;
    Alcotest.test_case "containments on key shapes" `Quick
      test_containments_lb_iriw;
    Alcotest.test_case "plain load sites" `Quick test_plain_load_sites;
  ]

let catalog_suite =
  [
    Alcotest.test_case "catalog section-6 sweep" `Slow test_catalog_section6;
    Alcotest.test_case "random section-6 sweep" `Slow test_random_section6;
  ]
